// The "blocked" backend: a cache-blocked gate-batching executor. The
// reference executor streams the whole statevector once per op — on deep
// QSVT programs (hundreds of fused ops against a register that dwarfs L2)
// that is one full memory round trip per gate. This backend restructures
// the replay around *tiles*:
//
//  1. Plan (once per program, cached in the handle): walk the op stream
//     and greedily group consecutive ops into runs whose high target
//     qubits (>= block_bits) fit a small union H (|H| <= max_high_bits).
//     Control bits above the tile never force a split — within a tile
//     they are constant, so they compile into a per-tile fire predicate
//     instead of a gather dimension. Ops whose own high-target footprint
//     exceeds |H|max (e.g. a dense-embedding's register-wide unitary) and
//     runs too short to amortize the gather become full-state barriers.
//  2. Execute: for each run, partition the register into 2^(w-m) tiles of
//     2^m amplitudes (m = block_bits + |H|): the low block_bits qubits
//     plus the run's H qubits. Each tile is gathered into an L2-resident
//     scratch register with 2^|H| contiguous block copies, the whole run
//     of ops — remapped into the m-qubit tile index space at plan time —
//     is applied in-cache through the same shared kernels the reference
//     backend uses, and the tile is scattered back. One streaming pass
//     over the state per *run* instead of per *op*.
//
// OpenMP parallelizes over tiles (disjoint regions, no synchronization);
// the in-tile kernels run with allow_parallel = false so nothing nests.
// Because the tile ops reuse the kernel bodies verbatim and the remapping
// only relabels index bits, per-amplitude arithmetic matches the reference
// backend exactly.
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <complex>
#include <cstring>
#include <mutex>
#include <unordered_map>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/contracts.hpp"
#include "qsim/exec/backend/backend.hpp"
#include "qsim/exec/kernels.hpp"

namespace mpqls::qsim::exec {

namespace {

/// One op of a local run, remapped into the tile register. Outer control
/// bits (constant within a tile) became the fire predicate.
template <typename T>
struct TileOp {
  CompiledOp<T> op;
  std::uint64_t pos_outer = 0;  ///< global bits that must be 1 for the tile to fire
  std::uint64_t neg_outer = 0;  ///< global bits that must be 0
};

template <typename T>
struct PlanSegment {
  bool local = false;
  // local runs
  std::vector<TileOp<T>> tile_ops;
  std::uint32_t block_bits = 0;            ///< contiguous low bits of this run's tiles
  std::uint32_t tile_qubits = 0;           ///< m = block_bits + |H|
  /// The run's whole target footprint sits below block_bits: tiles are
  /// contiguous register slices and ops apply in place — no gather.
  bool contiguous = false;
  std::vector<std::uint64_t> inner_masks;  ///< single-bit masks of the tile's qubits, ascending
  std::vector<std::uint64_t> spread;       ///< sub-block s -> OR of its high-bit masks
  // barriers (indices into program.ops, replayed on the full register)
  std::vector<std::uint32_t> op_indices;
};

template <typename T>
struct BlockedPlan {
  std::uint32_t register_qubits = 0;
  std::uint32_t block_bits = 0;
  /// Whole register fits one tile: replay ops directly (plain reference
  /// sweep — blocking would only add copies).
  bool passthrough = false;
  std::vector<PlanSegment<T>> segments;
};

/// Tile-index relabeling for one run: global bit p < block_bits keeps its
/// position, the run's high bits map to block_bits + rank, everything else
/// is outer (constant within a tile).
struct BitMap {
  std::uint32_t block_bits = 0;
  std::uint64_t low_mask = 0;
  std::uint64_t high_mask = 0;
  std::vector<std::uint32_t> high_pos;  ///< sorted ascending

  std::uint64_t remap_bit(std::uint64_t bit) const {
    if (bit & low_mask) return bit;
    const auto p = static_cast<std::uint32_t>(std::countr_zero(bit));
    for (std::uint32_t rank = 0; rank < high_pos.size(); ++rank) {
      if (high_pos[rank] == p) return std::uint64_t{1} << (block_bits + rank);
    }
    expects(false, "blocked plan: bit escaped the tile map");
    return 0;
  }

  /// Split a control mask into its tile-remapped inner part and the outer
  /// bits that become the fire predicate.
  std::pair<std::uint64_t, std::uint64_t> split(std::uint64_t mask) const {
    std::uint64_t inner = 0, outer = 0;
    while (mask != 0) {
      const std::uint64_t bit = mask & (~mask + 1);
      mask ^= bit;
      if ((bit & low_mask) != 0 || (bit & high_mask) != 0) {
        inner |= remap_bit(bit);
      } else {
        outer |= bit;
      }
    }
    return {inner, outer};
  }
};

/// The target-bit footprint that decides run membership (controls never
/// force a gather — they predicate).
template <typename T>
std::uint64_t target_mask_of(const CompiledOp<T>& op) {
  switch (op.kind) {
    case OpKind::kApply1q: return op.target_bit;
    case OpKind::kDense:
    case OpKind::kDiagonal: return op.target_mask;
    case OpKind::kGlobalPhase: return 0;
  }
  return 0;
}

/// Rebuild a CompiledOp in the tile's index space. Payload values are
/// copied bit-for-bit (they were rounded once at specialization time);
/// only the index machinery — masks, insert_bits, target bits, gather
/// offsets — is recomputed, mirroring specialize<T>.
template <typename T>
TileOp<T> remap_op(const CompiledOp<T>& op, const BitMap& map) {
  TileOp<T> out;
  CompiledOp<T>& c = out.op;
  c.kind = op.kind;
  const auto [pos_in, pos_out] = map.split(op.pos_mask);
  const auto [neg_in, neg_out] = map.split(op.neg_mask);
  c.pos_mask = pos_in;
  c.neg_mask = neg_in;
  c.set_mask = pos_in;
  out.pos_outer = pos_out;
  out.neg_outer = neg_out;
  std::uint64_t skip = pos_in | neg_in;
  switch (op.kind) {
    case OpKind::kApply1q:
      c.target_bit = map.remap_bit(op.target_bit);
      c.m00 = op.m00;
      c.m01 = op.m01;
      c.m10 = op.m10;
      c.m11 = op.m11;
      skip |= c.target_bit;
      break;
    case OpKind::kGlobalPhase:
      c.phase = op.phase;
      break;
    case OpKind::kDense:
    case OpKind::kDiagonal: {
      c.num_targets = op.num_targets;
      c.target_bits.reserve(op.target_bits.size());
      // remap_bit is monotonic over tile bits, so sortedness survives and
      // the payload's target ordering is untouched.
      for (const auto bit : op.target_bits) {
        const std::uint64_t nb = map.remap_bit(bit);
        c.target_bits.push_back(nb);
        c.target_mask |= nb;
      }
      c.payload = op.payload;
      if (op.kind == OpKind::kDense) {
        c.payload_re = op.payload_re;
        c.payload_im = op.payload_im;
        const std::size_t sub_dim = std::size_t{1} << c.num_targets;
        c.offsets.resize(sub_dim);
        for (std::size_t s = 0; s < sub_dim; ++s) {
          std::uint64_t off = 0;
          for (std::uint32_t t = 0; t < c.num_targets; ++t) {
            if (s & (std::size_t{1} << t)) off |= c.target_bits[t];
          }
          c.offsets[s] = off;
        }
        skip |= c.target_mask;
      }
      break;
    }
  }
  for (std::uint32_t q = 0; q < 64 && (skip >> q) != 0; ++q) {
    if (skip & (std::uint64_t{1} << q)) c.insert_bits.push_back(std::uint64_t{1} << q);
  }
  c.free_shift = static_cast<std::uint32_t>(c.insert_bits.size());
  return out;
}

template <typename T>
BlockedPlan<T> build_plan(const Program<T>& program, std::uint32_t register_qubits,
                          const BlockedBackendOptions& opt, std::size_t bytes_per_amp) {
  BlockedPlan<T> plan;
  plan.register_qubits = register_qubits;

  // Largest tile the scratch budget holds.
  std::uint32_t m_max = 0;
  while (m_max < 30 && (std::size_t{1} << (m_max + 1)) * bytes_per_amp <= opt.tile_bytes) {
    ++m_max;
  }
  // Blocking needs headroom: the whole register fitting one tile means
  // there is nothing to block, and a tiny low-bit block would shred the
  // gather into sub-cacheline copies.
  if (m_max >= register_qubits || m_max < opt.max_high_bits + 4) {
    plan.passthrough = true;
    return plan;
  }
  const std::uint32_t b_min = m_max - opt.max_high_bits;
  plan.block_bits = b_min;

  // Per-run geometry: the largest contiguous low block b (>= b_min) whose
  // tile — b low bits plus the footprint bits at or above b — still fits
  // the scratch budget. Growing b swallows low-lying "high" targets into
  // the contiguous block (they stop costing a gather dimension), so a run
  // whose footprint sits just above b_min often collapses to b = m_max
  // with NO high bits left: contiguous tiles, ops applied in place.
  // Returns -1 when no b fits (a register-spanning dense op).
  auto best_b = [&](std::uint64_t target_union) -> std::int32_t {
    for (std::int32_t b = static_cast<std::int32_t>(m_max);
         b >= static_cast<std::int32_t>(b_min); --b) {
      const std::uint32_t high = static_cast<std::uint32_t>(std::popcount(target_union >> b));
      if (static_cast<std::uint32_t>(b) + high <= m_max) return b;
    }
    return -1;
  };

  auto append_barrier = [&](std::uint32_t idx) {
    if (plan.segments.empty() || plan.segments.back().local) {
      plan.segments.emplace_back();
    }
    plan.segments.back().op_indices.push_back(idx);
  };

  std::vector<std::uint32_t> run;
  std::uint64_t run_targets = 0;
  auto flush_run = [&]() {
    if (run.empty()) return;
    const auto b = static_cast<std::uint32_t>(best_b(run_targets));
    const std::uint64_t low_mask = (std::uint64_t{1} << b) - 1;
    const std::uint64_t run_high = run_targets & ~low_mask;
    if (run_high != 0 && run.size() < opt.min_run_ops) {
      // Too short to pay for the gather/scatter round trip. (Contiguous
      // runs skip the round trip, so any length is profitable there.)
      for (const auto idx : run) append_barrier(idx);
      run.clear();
      run_targets = 0;
      return;
    }
    PlanSegment<T> seg;
    seg.local = true;
    seg.block_bits = b;
    seg.contiguous = run_high == 0;
    BitMap map;
    map.block_bits = b;
    map.low_mask = low_mask;
    map.high_mask = run_high;
    std::vector<std::uint64_t> high_masks;
    for (std::uint64_t rest = run_high; rest != 0;) {
      const std::uint64_t bit = rest & (~rest + 1);
      rest ^= bit;
      map.high_pos.push_back(static_cast<std::uint32_t>(std::countr_zero(bit)));
      high_masks.push_back(bit);
    }
    seg.tile_qubits = b + static_cast<std::uint32_t>(high_masks.size());
    for (std::uint32_t q = 0; q < b; ++q) seg.inner_masks.push_back(std::uint64_t{1} << q);
    seg.inner_masks.insert(seg.inner_masks.end(), high_masks.begin(), high_masks.end());
    seg.spread.resize(std::size_t{1} << high_masks.size());
    for (std::size_t s = 0; s < seg.spread.size(); ++s) {
      std::uint64_t off = 0;
      for (std::size_t j = 0; j < high_masks.size(); ++j) {
        if (s & (std::size_t{1} << j)) off |= high_masks[j];
      }
      seg.spread[s] = off;
    }
    seg.tile_ops.reserve(run.size());
    for (const auto idx : run) seg.tile_ops.push_back(remap_op(program.ops[idx], map));
    plan.segments.push_back(std::move(seg));
    run.clear();
    run_targets = 0;
  };

  for (std::uint32_t idx = 0; idx < program.ops.size(); ++idx) {
    const std::uint64_t targets = target_mask_of(program.ops[idx]);
    if (best_b(targets) < 0) {
      // Wider than any tile (e.g. a register-spanning dense unitary):
      // full-state barrier.
      flush_run();
      append_barrier(idx);
      continue;
    }
    if (best_b(run_targets | targets) < 0) flush_run();
    run.push_back(idx);
    run_targets |= targets;
  }
  flush_run();
  if (std::getenv("MPQLS_BLOCKED_PLAN_DEBUG") != nullptr) {
    std::size_t runs = 0, run_ops = 0, barrier_ops = 0, max_run = 0;
    std::size_t contig_runs = 0, contig_ops = 0;
    for (const auto& seg : plan.segments) {
      if (seg.local) {
        ++runs;
        run_ops += seg.tile_ops.size();
        max_run = std::max(max_run, seg.tile_ops.size());
        if (seg.contiguous) {
          ++contig_runs;
          contig_ops += seg.tile_ops.size();
        }
      } else {
        barrier_ops += seg.op_indices.size();
      }
    }
    std::size_t tall = 0, tall_controlled = 0;
    for (const auto& op : program.ops) {
      if ((target_mask_of(op) >> m_max) != 0) {
        ++tall;
        if (op.pos_mask != 0 || op.neg_mask != 0) ++tall_controlled;
      }
    }
    std::fprintf(stderr,
                 "[blocked plan] w=%u b_min=%u ops=%zu: %zu runs (%zu ops, max %zu, avg %.1f; "
                 "%zu contiguous with %zu ops), %zu barrier ops, %zu tall (%zu controlled)\n",
                 register_qubits, b_min, program.ops.size(), runs, run_ops, max_run,
                 runs ? static_cast<double>(run_ops) / runs : 0.0, contig_runs, contig_ops,
                 barrier_ops, tall, tall_controlled);
  }
  return plan;
}

// --- execution --------------------------------------------------------------

inline int replay_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int replay_thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Per-thread scratch reused across every segment of a replay. A fresh
/// tile-sized vector per parallel region would allocate (and, at the
/// default tile budget, mmap + fault-in) a tile per segment per thread;
/// one pool entry per thread amortizes that to once per replay.
template <typename V>
std::vector<V>& pooled(std::vector<std::vector<V>>& pool, std::size_t min_size) {
  auto& buf = pool[static_cast<std::size_t>(replay_thread_id())];
  if (buf.size() < min_size) buf.resize(min_size);
  return buf;
}

template <typename T>
void run_scalar(const BlockedPlan<T>& plan, const Program<T>& program, std::complex<T>* amps,
                std::int64_t n) {
  using complex_type = std::complex<T>;
  std::vector<T> barrier_scratch;
  if (plan.passthrough) {
    for (const auto& op : program.ops) kernels::apply_op(op, amps, n, barrier_scratch);
    return;
  }
  std::vector<std::vector<complex_type>> tile_pool(replay_threads());
  std::vector<std::vector<T>> dscratch_pool(replay_threads());
  for (const auto& seg : plan.segments) {
    if (!seg.local) {
      for (const auto idx : seg.op_indices) {
        kernels::apply_op(program.ops[idx], amps, n, barrier_scratch);
      }
      continue;
    }
    const std::size_t block_len = std::size_t{1} << seg.block_bits;
    const std::int64_t tile_dim = std::int64_t{1} << seg.tile_qubits;
    const std::int64_t tiles = n >> seg.tile_qubits;
    if (seg.contiguous) {
      // The run's footprint sits below block_bits: every tile is a
      // contiguous register slice, so ops apply in place — no gather.
      auto process_slice = [&](std::int64_t t, std::vector<T>& dscratch) {
        const std::uint64_t base = static_cast<std::uint64_t>(t) << seg.tile_qubits;
        complex_type* tile = amps + base;
        for (const auto& top : seg.tile_ops) {
          if ((base & top.pos_outer) == top.pos_outer && (base & top.neg_outer) == 0) {
            kernels::apply_op(top.op, tile, tile_dim, dscratch, /*allow_parallel=*/false);
          }
        }
      };
      if (tiles > 1 && n >= kernels::kParallelAmps) {
#pragma omp parallel
        {
          auto& dscratch = pooled(dscratch_pool, 0);
#pragma omp for
          for (std::int64_t t = 0; t < tiles; ++t) process_slice(t, dscratch);
        }
      } else {
        for (std::int64_t t = 0; t < tiles; ++t) process_slice(t, dscratch_pool[0]);
      }
      continue;
    }
    auto process_tile = [&](std::int64_t t, complex_type* tile, std::vector<T>& dscratch) {
      std::uint64_t base = static_cast<std::uint64_t>(t);
      for (const auto mask : seg.inner_masks) base = kernels::expand_at(base, mask);
      // A tile whose outer-control predicate rejects every op is untouched
      // — checking first saves the whole gather/scatter round trip (common
      // when a run's ops are all keyed to specific outer ancilla values).
      bool any_fires = false;
      for (const auto& top : seg.tile_ops) {
        if ((base & top.pos_outer) == top.pos_outer && (base & top.neg_outer) == 0) {
          any_fires = true;
          break;
        }
      }
      if (!any_fires) return;
      for (std::size_t s = 0; s < seg.spread.size(); ++s) {
        std::memcpy(tile + (s << seg.block_bits), amps + (base | seg.spread[s]),
                    block_len * sizeof(complex_type));
      }
      for (const auto& top : seg.tile_ops) {
        if ((base & top.pos_outer) == top.pos_outer && (base & top.neg_outer) == 0) {
          kernels::apply_op(top.op, tile, tile_dim, dscratch, /*allow_parallel=*/false);
        }
      }
      for (std::size_t s = 0; s < seg.spread.size(); ++s) {
        std::memcpy(amps + (base | seg.spread[s]), tile + (s << seg.block_bits),
                    block_len * sizeof(complex_type));
      }
    };
    if (tiles > 1 && n >= kernels::kParallelAmps) {
#pragma omp parallel
      {
        auto& tile = pooled(tile_pool, static_cast<std::size_t>(tile_dim));
        auto& dscratch = pooled(dscratch_pool, 0);
#pragma omp for
        for (std::int64_t t = 0; t < tiles; ++t) process_tile(t, tile.data(), dscratch);
      }
    } else {
      auto& tile = pooled(tile_pool, static_cast<std::size_t>(tile_dim));
      for (std::int64_t t = 0; t < tiles; ++t) process_tile(t, tile.data(), dscratch_pool[0]);
    }
  }
}

template <int kLanes, typename T>
void run_panel(const BlockedPlan<T>& plan, const Program<T>& program, T* re, T* im,
               std::int64_t n, std::int64_t lanes) {
  using C = exec_compute_t<T>;
  std::vector<C> barrier_scratch;
  if (plan.passthrough) {
    for (const auto& op : program.ops) {
      kernels::panel_apply_op<kLanes>(op, re, im, n, lanes, barrier_scratch);
    }
    return;
  }
  std::vector<std::vector<T>> tre_pool(replay_threads()), tim_pool(replay_threads());
  std::vector<std::vector<C>> dscratch_pool(replay_threads());
  for (const auto& seg : plan.segments) {
    if (!seg.local) {
      for (const auto idx : seg.op_indices) {
        kernels::panel_apply_op<kLanes>(program.ops[idx], re, im, n, lanes, barrier_scratch);
      }
      continue;
    }
    // One gathered block row is block_len amplitudes x lanes contiguous
    // scalars per plane (the panel's lane-innermost layout keeps tile
    // copies memcpy-shaped exactly like the scalar path).
    const std::size_t row_len =
        (std::size_t{1} << seg.block_bits) * static_cast<std::size_t>(lanes);
    const std::int64_t tile_dim = std::int64_t{1} << seg.tile_qubits;
    const std::int64_t tiles = n >> seg.tile_qubits;
    if (seg.contiguous) {
      // Contiguous tiles: each is a slice of both planes — apply in place.
      auto process_slice = [&](std::int64_t t, std::vector<C>& dscratch) {
        const std::uint64_t base = static_cast<std::uint64_t>(t) << seg.tile_qubits;
        const std::size_t off = base * static_cast<std::size_t>(lanes);
        for (const auto& top : seg.tile_ops) {
          if ((base & top.pos_outer) == top.pos_outer && (base & top.neg_outer) == 0) {
            kernels::panel_apply_op<kLanes>(top.op, re + off, im + off, tile_dim, lanes,
                                            dscratch, /*allow_parallel=*/false);
          }
        }
      };
      if (tiles > 1 && n * lanes >= kernels::kParallelAmpWork) {
#pragma omp parallel
        {
          auto& dscratch = pooled(dscratch_pool, 0);
#pragma omp for
          for (std::int64_t t = 0; t < tiles; ++t) process_slice(t, dscratch);
        }
      } else {
        for (std::int64_t t = 0; t < tiles; ++t) process_slice(t, dscratch_pool[0]);
      }
      continue;
    }
    auto process_tile = [&](std::int64_t t, T* tre, T* tim, std::vector<C>& dscratch) {
      std::uint64_t base = static_cast<std::uint64_t>(t);
      for (const auto mask : seg.inner_masks) base = kernels::expand_at(base, mask);
      // Untouched tile (predicate rejects every op): skip the round trip.
      bool any_fires = false;
      for (const auto& top : seg.tile_ops) {
        if ((base & top.pos_outer) == top.pos_outer && (base & top.neg_outer) == 0) {
          any_fires = true;
          break;
        }
      }
      if (!any_fires) return;
      for (std::size_t s = 0; s < seg.spread.size(); ++s) {
        const std::size_t src = (base | seg.spread[s]) * static_cast<std::size_t>(lanes);
        const std::size_t dst = (s << seg.block_bits) * static_cast<std::size_t>(lanes);
        std::memcpy(tre + dst, re + src, row_len * sizeof(T));
        std::memcpy(tim + dst, im + src, row_len * sizeof(T));
      }
      for (const auto& top : seg.tile_ops) {
        if ((base & top.pos_outer) == top.pos_outer && (base & top.neg_outer) == 0) {
          kernels::panel_apply_op<kLanes>(top.op, tre, tim, tile_dim, lanes, dscratch,
                                          /*allow_parallel=*/false);
        }
      }
      for (std::size_t s = 0; s < seg.spread.size(); ++s) {
        const std::size_t dst = (base | seg.spread[s]) * static_cast<std::size_t>(lanes);
        const std::size_t src = (s << seg.block_bits) * static_cast<std::size_t>(lanes);
        std::memcpy(re + dst, tre + src, row_len * sizeof(T));
        std::memcpy(im + dst, tim + src, row_len * sizeof(T));
      }
    };
    const std::size_t plane_len = static_cast<std::size_t>(tile_dim) * static_cast<std::size_t>(lanes);
    if (tiles > 1 && n * lanes >= kernels::kParallelAmpWork) {
#pragma omp parallel
      {
        auto& tre = pooled(tre_pool, plane_len);
        auto& tim = pooled(tim_pool, plane_len);
        auto& dscratch = pooled(dscratch_pool, 0);
#pragma omp for
        for (std::int64_t t = 0; t < tiles; ++t) process_tile(t, tre.data(), tim.data(), dscratch);
      }
    } else {
      auto& tre = pooled(tre_pool, plane_len);
      auto& tim = pooled(tim_pool, plane_len);
      for (std::int64_t t = 0; t < tiles; ++t) process_tile(t, tre.data(), tim.data(), dscratch_pool[0]);
    }
  }
}

// --- handle + backend -------------------------------------------------------

/// Per-consumer plan cache. Programs are immutable and outlive the handle
/// (they sit in the context's ProgramSet), so the program address plus the
/// register/lane geometry identifies a plan.
class BlockedHandle final : public BackendHandle {
 public:
  struct Key {
    const void* program;
    std::uint32_t qubits;
    std::uint64_t lanes;  ///< 0 = scalar register
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = std::hash<const void*>{}(k.program);
      const std::uint64_t geo = (std::uint64_t{k.qubits} << 32) | k.lanes;
      h ^= std::hash<std::uint64_t>{}(geo) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return h;
    }
  };

  std::mutex mutex;
  std::unordered_map<Key, std::shared_ptr<const void>, KeyHash> plans;
};

template <typename T>
std::shared_ptr<const BlockedPlan<T>> plan_for(BlockedHandle& handle, const Program<T>& program,
                                               std::uint32_t register_qubits, std::uint64_t lanes,
                                               const BlockedBackendOptions& options,
                                               std::size_t bytes_per_amp) {
  const BlockedHandle::Key key{&program, register_qubits, lanes};
  {
    std::lock_guard<std::mutex> lock(handle.mutex);
    auto it = handle.plans.find(key);
    if (it != handle.plans.end()) {
      return std::static_pointer_cast<const BlockedPlan<T>>(it->second);
    }
  }
  // Build outside the lock (first calls for different programs need not
  // serialize); a lost race just keeps the other thread's identical plan.
  auto built = std::make_shared<const BlockedPlan<T>>(
      build_plan(program, register_qubits, options, bytes_per_amp));
  std::lock_guard<std::mutex> lock(handle.mutex);
  auto [it, inserted] = handle.plans.emplace(key, built);
  return std::static_pointer_cast<const BlockedPlan<T>>(it->second);
}

class BlockedBackend final : public ExecBackend {
 public:
  explicit BlockedBackend(BlockedBackendOptions options) : options_(options) {
    caps_.name = "blocked";
    caps_.description =
        "cache-blocked gate-batching executor (L2-resident tiles, fused-op runs per pass)";
    caps_.precisions = {"half", "single", "double"};
    caps_.max_qubits = 30;
    caps_.panel_widths = {1, 2, 4, 8, 16, 0};
  }

  const BackendCapabilities& capabilities() const override { return caps_; }

  std::shared_ptr<BackendHandle> create_handle() const override {
    return std::make_shared<BlockedHandle>();
  }

  std::size_t workspace_bytes(std::uint32_t /*num_qubits*/) const override {
    // Tile register + gathered dense scratch, per replay thread.
    return 2 * options_.tile_bytes;
  }

  void apply_program(BackendHandle& handle, const Program<float>& program,
                     Statevector<float>& sv) const override {
    scalar_entry(handle, program, sv);
  }
  void apply_program(BackendHandle& handle, const Program<double>& program,
                     Statevector<double>& sv) const override {
    scalar_entry(handle, program, sv);
  }

  void apply_program_panel(BackendHandle& handle, const Program<f16>& program,
                           StatePanel<f16>& panel) const override {
    panel_entry(handle, program, panel);
  }
  void apply_program_panel(BackendHandle& handle, const Program<float>& program,
                           StatePanel<float>& panel) const override {
    panel_entry(handle, program, panel);
  }
  void apply_program_panel(BackendHandle& handle, const Program<double>& program,
                           StatePanel<double>& panel) const override {
    panel_entry(handle, program, panel);
  }

 private:
  template <typename T>
  void scalar_entry(BackendHandle& handle, const Program<T>& program, Statevector<T>& sv) const {
    expects((std::size_t{1} << program.num_qubits) <= sv.dim(),
            "blocked exec: program wider than register");
    auto* h = dynamic_cast<BlockedHandle*>(&handle);
    expects(h != nullptr, "blocked exec: handle belongs to another backend");
    const auto w = static_cast<std::uint32_t>(std::countr_zero(sv.dim()));
    const auto plan = plan_for(*h, program, w, 0, options_, sizeof(std::complex<T>));
    run_scalar(*plan, program, sv.data(), static_cast<std::int64_t>(sv.dim()));
  }

  template <typename T>
  void panel_entry(BackendHandle& handle, const Program<T>& program, StatePanel<T>& panel) const {
    expects((std::size_t{1} << program.num_qubits) <= panel.dim(),
            "blocked exec: program wider than register");
    auto* h = dynamic_cast<BlockedHandle*>(&handle);
    expects(h != nullptr, "blocked exec: handle belongs to another backend");
    const auto w = static_cast<std::uint32_t>(std::countr_zero(panel.dim()));
    const std::size_t bytes_per_amp = 2 * sizeof(T) * panel.lanes();
    const auto plan = plan_for(*h, program, w, panel.lanes(), options_, bytes_per_amp);
    T* re = panel.re();
    T* im = panel.im();
    const auto n = static_cast<std::int64_t>(panel.dim());
    const auto lanes = static_cast<std::int64_t>(panel.lanes());
    switch (panel.lanes()) {
      case 1: run_panel<1>(*plan, program, re, im, n, lanes); break;
      case 2: run_panel<2>(*plan, program, re, im, n, lanes); break;
      case 4: run_panel<4>(*plan, program, re, im, n, lanes); break;
      case 8: run_panel<8>(*plan, program, re, im, n, lanes); break;
      case 16: run_panel<16>(*plan, program, re, im, n, lanes); break;
      default: run_panel<0>(*plan, program, re, im, n, lanes); break;
    }
  }

  BlockedBackendOptions options_;
  BackendCapabilities caps_;
};

/// Read a tuning override from the environment. A malformed value (not a
/// bare decimal integer, trailing junk, overflow) or one outside
/// [lo, hi] earns a one-line stderr warning and leaves the compiled-in
/// default in place — a typo'd deploy knob must degrade to the default,
/// never to a zero-byte tile or a 2^64-bit gather.
std::uint64_t env_tuning(const char* name, std::uint64_t lo, std::uint64_t hi,
                         std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  const bool numeric = end != s && *end == '\0' && errno == 0 && *s != '-' && *s != '+';
  if (!numeric || v < lo || v > hi) {
    std::fprintf(stderr,
                 "blocked backend: ignoring %s=\"%s\" (want an integer in [%llu, %llu]); "
                 "using default %llu\n",
                 name, s, static_cast<unsigned long long>(lo),
                 static_cast<unsigned long long>(hi),
                 static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return v;
}

}  // namespace

std::shared_ptr<ExecBackend> make_blocked_backend(const BlockedBackendOptions& options) {
  BlockedBackendOptions opt = options;
  // Tile must hold at least one cache line of amplitudes and stay
  // addressable; high bits beyond 24 would gather a tile larger than any
  // statevector this process can host.
  opt.tile_bytes = env_tuning("MPQLS_BLOCKED_TILE_BYTES", 1024, std::uint64_t{1} << 32,
                              opt.tile_bytes);
  opt.max_high_bits = static_cast<std::uint32_t>(
      env_tuning("MPQLS_BLOCKED_MAX_HIGH_BITS", 0, 24, opt.max_high_bits));
  opt.min_run_ops = static_cast<std::uint32_t>(
      env_tuning("MPQLS_BLOCKED_MIN_RUN_OPS", 1, 1u << 20, opt.min_run_ops));
  return std::make_shared<BlockedBackend>(opt);
}

}  // namespace mpqls::qsim::exec
