// Pluggable execution backends behind the compiled IR. The compiler
// pipeline (Circuit -> FusedIr -> Program<T>) is backend-agnostic; this
// interface makes the *last* stage — replaying a Program<T> against a
// register — a dispatchable seam shaped like the GPU statevector APIs
// (cuStateVec-style): create a handle, query workspace, apply a program.
//
// Contract:
//  * `create_handle()` returns the backend's per-consumer state (plan
//    caches, workspace). One handle serves one solver context; `apply_*`
//    calls on it may race from many solve threads, so a backend's handle
//    must be internally synchronized. Destroying the handle (its last
//    shared_ptr) releases everything the backend allocated for it.
//  * `apply_program` / `apply_program_panel` replay every op of the
//    program, in order, against the register — semantically identical to
//    Executor<T>/PanelExecutor<T> up to floating-point reassociation. The
//    program outlives the handle's use of it (programs are cached inside
//    a ProgramSet for the context's lifetime), which lets backends key
//    per-program plans by address.
//  * `capabilities()` is a static descriptor the service layer surfaces in
//    /v1/healthz and the cluster coordinator routes on.
//
// Adding a backend = subclass ExecBackend, implement the entry points, and
// register an instance in `register_builtin_backends` (backend.cpp) or via
// `backend_registry().register_backend(...)` at startup. Nothing above
// this layer (solver, service, daemon, coordinator) names concrete
// backends except by string.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qsim/exec/panel.hpp"
#include "qsim/exec/program.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim::exec {

/// What a backend can run — the routing/telemetry descriptor. Precisions
/// use the wire names of the service layer ("half", "single", "double").
struct BackendCapabilities {
  std::string name;
  std::string description;
  std::vector<std::string> precisions;
  std::uint32_t max_qubits = 0;
  /// Panel lane widths with a specialized kernel path; 0 marks support
  /// for arbitrary runtime widths (the generic lane path).
  std::vector<std::uint32_t> panel_widths;
};

/// Opaque per-consumer backend state (plan caches, workspace). Backends
/// downcast to their concrete handle type inside apply_*.
class BackendHandle {
 public:
  virtual ~BackendHandle() = default;
};

class ExecBackend {
 public:
  virtual ~ExecBackend() = default;

  virtual const BackendCapabilities& capabilities() const = 0;

  /// Fresh per-consumer state. Never nullptr.
  virtual std::shared_ptr<BackendHandle> create_handle() const = 0;

  /// Upper bound on the auxiliary bytes one replay thread needs for an
  /// `num_qubits`-qubit register (scratch registers, gather buffers —
  /// excludes the statevector itself). Telemetry/planning only.
  virtual std::size_t workspace_bytes(std::uint32_t num_qubits) const = 0;

  // Scalar register entry points. (Virtuals cannot be templates; the f16
  // tier has no Statevector<f16> — half always runs the panel form.)
  virtual void apply_program(BackendHandle& handle, const Program<float>& program,
                             Statevector<float>& sv) const = 0;
  virtual void apply_program(BackendHandle& handle, const Program<double>& program,
                             Statevector<double>& sv) const = 0;

  // Panel entry points, one per storage tier.
  virtual void apply_program_panel(BackendHandle& handle, const Program<f16>& program,
                                   StatePanel<f16>& panel) const = 0;
  virtual void apply_program_panel(BackendHandle& handle, const Program<float>& program,
                                   StatePanel<float>& panel) const = 0;
  virtual void apply_program_panel(BackendHandle& handle, const Program<double>& program,
                                   StatePanel<double>& panel) const = 0;
};

/// Process-wide backend registry. The built-ins ("reference", "blocked")
/// self-register on first access; additional backends may be registered at
/// startup. Lookup is by capability name. Thread-safe; registered backends
/// live for the process lifetime (raw pointers returned by find/list never
/// dangle).
class BackendRegistry {
 public:
  /// Register a backend under its capability name. Re-registering a name
  /// replaces the entry (the old instance stays alive — handed-out
  /// pointers remain valid).
  void register_backend(std::shared_ptr<ExecBackend> backend);

  /// nullptr when no backend of that name exists.
  const ExecBackend* find(const std::string& name) const;

  /// Registration-ordered list of every backend.
  std::vector<const ExecBackend*> list() const;

  /// Registration-ordered list of every backend name.
  std::vector<std::string> names() const;

 private:
  friend BackendRegistry& backend_registry();
  BackendRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// The process-wide registry (built-ins installed on first call).
BackendRegistry& backend_registry();

/// Name of the backend the stack selects when nothing else is configured.
inline constexpr const char* kDefaultBackendName = "reference";

/// Registry lookup shorthand: nullptr when unknown.
const ExecBackend* find_backend(const std::string& name);

/// The "reference" backend (always registered).
const ExecBackend& default_backend();

// Built-in factories (used by the registry; exposed for tests that want a
// private instance with non-default tuning).
std::shared_ptr<ExecBackend> make_reference_backend();

/// Tuning knobs of the cache-blocked backend; the defaults target an
/// L1/L2-resident tile on current x86 parts. Exposed so tests and benches
/// can force specific blocking geometries.
struct BlockedBackendOptions {
  /// Per-thread tile scratch budget in bytes (statevector elements only;
  /// dense-op scratch rides on top). The tile qubit count m is the
  /// largest m with 2^m amplitudes fitting this budget.
  std::size_t tile_bytes = std::size_t{1} << 17;  // 128 KiB
  /// Max high (>= block_bits) target qubits gathered into one tile pass.
  std::uint32_t max_high_bits = 5;
  /// Runs shorter than this execute as full-state barriers instead — the
  /// gather/scatter round trip needs a few ops to amortize.
  std::uint32_t min_run_ops = 4;
};

std::shared_ptr<ExecBackend> make_blocked_backend(const BlockedBackendOptions& options = {});

}  // namespace mpqls::qsim::exec
