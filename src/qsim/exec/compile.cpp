#include "qsim/exec/compile.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>

#include "common/contracts.hpp"

namespace mpqls::qsim::exec {

namespace {

using c64 = std::complex<double>;

std::uint64_t bit_of(std::uint32_t q) { return std::uint64_t{1} << q; }

// Row-major dense product a * b (both dim x dim).
std::vector<c64> mat_mul(const std::vector<c64>& a, const std::vector<c64>& b, std::size_t dim) {
  std::vector<c64> out(dim * dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t l = 0; l < dim; ++l) {
      const c64 ail = a[i * dim + l];
      if (ail == c64{}) continue;
      for (std::size_t j = 0; j < dim; ++j) {
        out[i * dim + j] += ail * b[l * dim + j];
      }
    }
  }
  return out;
}

// Remap a payload indexed by `original` target order to ascending target
// order: new index bit i corresponds to qubit sorted[i].
std::uint64_t remap_index(std::uint64_t s, const std::vector<std::uint32_t>& original,
                          const std::vector<std::uint32_t>& sorted) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (s & (std::uint64_t{1} << i)) {
      const auto it = std::find(original.begin(), original.end(), sorted[i]);
      out |= std::uint64_t{1} << static_cast<std::size_t>(it - original.begin());
    }
  }
  return out;
}

// Lower one gate into a node: payload materialized in double, adjoint
// resolved, targets ascending, controls as masks.
FusedOp lower(const Gate& g) {
  FusedOp op;
  for (auto q : g.controls) op.pos_mask |= bit_of(q);
  for (auto q : g.neg_controls) op.neg_mask |= bit_of(q);
  switch (g.kind) {
    case GateKind::kGlobalPhase: {
      const c64 phase = std::exp(c64(0, g.adjoint ? -g.param : g.param));
      if (!g.controls.empty()) {
        // Controlled global phase == phase gate on one control, controlled
        // on the rest (same identity Circuit::controlled uses).
        op.kind = OpKind::kApply1q;
        op.targets = {g.controls[0]};
        op.pos_mask &= ~bit_of(g.controls[0]);
        op.payload = {1.0, 0.0, 0.0, phase};
      } else if (!g.neg_controls.empty()) {
        op.kind = OpKind::kApply1q;
        op.targets = {g.neg_controls[0]};
        op.neg_mask &= ~bit_of(g.neg_controls[0]);
        op.payload = {phase, 0.0, 0.0, 1.0};
      } else {
        op.kind = OpKind::kGlobalPhase;
        op.payload = {phase};
      }
      return op;
    }
    case GateKind::kSwap: {
      op.kind = OpKind::kDense;
      op.targets = {g.targets[0], g.targets[1]};
      std::sort(op.targets.begin(), op.targets.end());
      op.payload.assign(16, c64{});
      op.payload[0 * 4 + 0] = 1.0;
      op.payload[1 * 4 + 2] = 1.0;
      op.payload[2 * 4 + 1] = 1.0;
      op.payload[3 * 4 + 3] = 1.0;
      return op;
    }
    case GateKind::kUnitary: {
      op.kind = OpKind::kDense;
      op.targets = g.targets;
      std::sort(op.targets.begin(), op.targets.end());
      const auto& m = *g.matrix;
      const std::size_t dim = m.rows();
      op.payload.resize(dim * dim);
      for (std::size_t r = 0; r < dim; ++r) {
        const std::uint64_t rr = remap_index(r, g.targets, op.targets);
        for (std::size_t c = 0; c < dim; ++c) {
          const std::uint64_t cc = remap_index(c, g.targets, op.targets);
          op.payload[r * dim + c] = g.adjoint ? std::conj(m(cc, rr)) : m(rr, cc);
        }
      }
      return op;
    }
    case GateKind::kDiagonal: {
      op.kind = OpKind::kDiagonal;
      op.targets = g.targets;
      std::sort(op.targets.begin(), op.targets.end());
      const auto& d = *g.diagonal;
      op.payload.resize(d.size());
      for (std::size_t s = 0; s < d.size(); ++s) {
        const c64 v = d[remap_index(s, g.targets, op.targets)];
        op.payload[s] = g.adjoint ? std::conj(v) : v;
      }
      return op;
    }
    default: {
      op.kind = OpKind::kApply1q;
      op.targets = {g.targets[0]};
      const auto m = gate_matrix_1q(g.kind, g.param, g.adjoint);
      op.payload = {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
      return op;
    }
  }
}

// All register qubits an op touches (targets + control bits), ascending.
std::vector<std::uint32_t> touched_qubits(const FusedOp& op, std::uint32_t num_qubits) {
  std::vector<std::uint32_t> qs = op.targets;
  const std::uint64_t masks = op.pos_mask | op.neg_mask;
  for (std::uint32_t q = 0; q < num_qubits; ++q) {
    if (masks & bit_of(q)) qs.push_back(q);
  }
  std::sort(qs.begin(), qs.end());
  return qs;
}

// Dense matrix of `op` over the sorted superset `qubits` (which must
// contain every qubit op touches). Controls fold into the matrix: rows
// whose control bits are unsatisfied act as identity.
std::vector<c64> embed(const FusedOp& op, const std::vector<std::uint32_t>& qubits) {
  const std::size_t m = qubits.size();
  const std::size_t dim = std::size_t{1} << m;
  // Window bit i <-> register bit qubits[i].
  std::vector<std::uint64_t> window_bits(m);
  for (std::size_t i = 0; i < m; ++i) window_bits[i] = bit_of(qubits[i]);
  // Position of each op target inside the window.
  std::vector<std::size_t> tpos;
  for (auto t : op.targets) {
    const auto it = std::lower_bound(qubits.begin(), qubits.end(), t);
    expects(it != qubits.end() && *it == t, "exec: embed target outside window");
    tpos.push_back(static_cast<std::size_t>(it - qubits.begin()));
  }
  const std::size_t sub_dim = std::size_t{1} << tpos.size();

  std::vector<c64> out(dim * dim);
  for (std::size_t col = 0; col < dim; ++col) {
    // Register-bit pattern of this window basis state.
    std::uint64_t pattern = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (col & (std::size_t{1} << i)) pattern |= window_bits[i];
    }
    const bool fires =
        (pattern & op.pos_mask) == op.pos_mask && (pattern & op.neg_mask) == 0;
    if (!fires) {
      out[col * dim + col] = 1.0;
      continue;
    }
    std::size_t sub = 0;
    for (std::size_t t = 0; t < tpos.size(); ++t) {
      if (col & (std::size_t{1} << tpos[t])) sub |= std::size_t{1} << t;
    }
    switch (op.kind) {
      case OpKind::kGlobalPhase:
        out[col * dim + col] = op.payload[0];
        break;
      case OpKind::kDiagonal:
        out[col * dim + col] = op.payload[sub];
        break;
      case OpKind::kApply1q:
      case OpKind::kDense:
        for (std::size_t r = 0; r < sub_dim; ++r) {
          const c64 v = op.payload[r * sub_dim + sub];
          if (v == c64{}) continue;
          std::size_t row = col;
          for (std::size_t t = 0; t < tpos.size(); ++t) {
            const std::size_t b = std::size_t{1} << tpos[t];
            row = (r & (std::size_t{1} << t)) ? (row | b) : (row & ~b);
          }
          out[row * dim + col] = v;
        }
        break;
    }
  }
  return out;
}

struct Window {
  std::vector<std::uint32_t> qubits;  ///< sorted union of node qubits; empty = closed
  std::vector<FusedOp> nodes;         ///< constituent nodes in circuit order

  bool open() const { return !qubits.empty(); }

  void clear() {
    qubits.clear();
    nodes.clear();
  }
};

// Per-amplitude kernel cost (flops + traffic, in "multiplies per
// amplitude" units) — what the fusion decision compares. The executor
// enumerates only the firing subspace, so c control bits divide an op's
// cost by 2^c; a dense op pays 2^k multiplies per amplitude it touches.
double op_cost(const FusedOp& op) {
  const int n_controls = std::popcount(op.pos_mask | op.neg_mask);
  const double masked = 1.0 / static_cast<double>(std::uint64_t{1} << std::min(n_controls, 40));
  switch (op.kind) {
    case OpKind::kGlobalPhase:
      return 1.0;
    case OpKind::kDiagonal:
      return masked * 1.0;
    case OpKind::kApply1q:
      return masked * 2.0;
    case OpKind::kDense:
      return masked * static_cast<double>(std::size_t{1} << op.targets.size());
  }
  return 1.0;
}

// Fused matrix of a node run over the window's qubit set.
std::vector<c64> fuse_nodes(const Window& w) {
  const std::size_t dim = std::size_t{1} << w.qubits.size();
  std::vector<c64> matrix;
  for (const auto& node : w.nodes) {
    auto node_m = embed(node, w.qubits);
    matrix = matrix.empty() ? std::move(node_m) : mat_mul(node_m, matrix, dim);
  }
  return matrix;
}

// An exactly-diagonal matrix keeps off-diagonal zeros exact under
// products, so this is a structural check, not a tolerance one.
bool is_diagonal(const std::vector<c64>& m, std::size_t dim) {
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      if (r != c && m[r * dim + c] != c64{}) return false;
    }
  }
  return true;
}

std::uint64_t greedy_depth(const FusedIr& ir) {
  std::vector<std::uint64_t> level(ir.num_qubits, 0);
  std::uint64_t depth = 0;
  for (const auto& op : ir.ops) {
    const auto qs = touched_qubits(op, ir.num_qubits);
    if (qs.empty()) continue;  // a global phase shares any layer
    std::uint64_t layer = 0;
    for (auto q : qs) layer = std::max(layer, level[q]);
    ++layer;
    for (auto q : qs) level[q] = layer;
    depth = std::max(depth, layer);
  }
  return depth;
}

}  // namespace

FusedIr lower_and_fuse(const Circuit& circuit, const CompileOptions& options) {
  FusedIr ir;
  ir.num_qubits = circuit.num_qubits();
  ir.stats.source_gates = circuit.size();
  const std::uint32_t max_window = std::max<std::uint32_t>(1, options.max_fuse_qubits);

  Window window;

  auto emit = [&](FusedOp op) {
    // Peephole: merge into the previous op when it is the same-shaped
    // single-qubit / diagonal op (identical target set and control masks).
    if (options.fuse && !ir.ops.empty()) {
      FusedOp& prev = ir.ops.back();
      if (op.kind == prev.kind && op.targets == prev.targets &&
          op.pos_mask == prev.pos_mask && op.neg_mask == prev.neg_mask) {
        if (op.kind == OpKind::kApply1q) {
          prev.payload = mat_mul(op.payload, prev.payload, 2);
          prev.source_gates += op.source_gates;
          return;
        }
        if (op.kind == OpKind::kDiagonal) {
          for (std::size_t i = 0; i < prev.payload.size(); ++i) prev.payload[i] *= op.payload[i];
          prev.source_gates += op.source_gates;
          return;
        }
      }
    }
    if (op.source_gates > 1) {
      ir.stats.max_fused_span =
          std::max<std::uint64_t>(ir.stats.max_fused_span, op.targets.size());
    }
    ir.ops.push_back(std::move(op));
  };

  // Flushing decides whether the accumulated run is cheaper fused (one
  // dense/diagonal op over the union) or emitted gate-wise: eagerly fusing
  // two cheap single-qubit passes into a 2^k-wide dense kernel would be a
  // pessimization, so the matrices are only merged when the cost model
  // says the fused kernel wins. Diagonal runs always fuse (a diagonal
  // kernel costs one multiply per amplitude no matter how many gates fed
  // it); the gate-wise fallback still benefits from the same-target
  // peephole inside emit().
  auto flush = [&] {
    if (!window.open()) return;
    Window w = std::move(window);
    window.clear();
    if (w.nodes.size() == 1) {
      emit(std::move(w.nodes.front()));
      return;
    }
    const std::size_t dim = std::size_t{1} << w.qubits.size();
    auto matrix = fuse_nodes(w);
    FusedOp fused;
    fused.targets = w.qubits;
    fused.source_gates = 0;
    for (const auto& node : w.nodes) fused.source_gates += node.source_gates;
    double nodes_cost = 0.0;
    for (const auto& node : w.nodes) nodes_cost += op_cost(node) + 0.25;
    if (w.qubits.size() == 1) {
      fused.kind = OpKind::kApply1q;
      fused.payload = std::move(matrix);
      emit(std::move(fused));
      return;
    }
    if (is_diagonal(matrix, dim)) {
      fused.kind = OpKind::kDiagonal;
      fused.payload.resize(dim);
      for (std::size_t r = 0; r < dim; ++r) fused.payload[r] = matrix[r * dim + r];
      emit(std::move(fused));
      return;
    }
    fused.kind = OpKind::kDense;
    fused.payload = std::move(matrix);
    if (op_cost(fused) + 0.25 <= nodes_cost) {
      emit(std::move(fused));
    } else {
      for (auto& node : w.nodes) emit(std::move(node));
    }
  };

  for (const Gate& g : circuit.gates()) {
    FusedOp node = lower(g);
    if (!options.fuse) {
      emit(std::move(node));
      continue;
    }
    if (node.kind == OpKind::kGlobalPhase) {
      // Scalars ride along in any open window; standalone otherwise.
      if (window.open()) {
        window.nodes.push_back(std::move(node));
      } else {
        emit(std::move(node));
      }
      continue;
    }
    const auto node_qubits = touched_qubits(node, ir.num_qubits);
    if (window.open()) {
      std::vector<std::uint32_t> merged;
      std::set_union(window.qubits.begin(), window.qubits.end(), node_qubits.begin(),
                     node_qubits.end(), std::back_inserter(merged));
      if (merged.size() <= max_window) {
        window.qubits = std::move(merged);
        window.nodes.push_back(std::move(node));
        continue;
      }
      flush();
    }
    if (node_qubits.size() <= max_window) {
      window.qubits = node_qubits;
      window.nodes.push_back(std::move(node));
    } else {
      emit(std::move(node));
    }
  }
  flush();

  ir.stats.ops = ir.ops.size();
  ir.stats.fused_gates =
      ir.stats.source_gates > ir.stats.ops ? ir.stats.source_gates - ir.stats.ops : 0;
  ir.stats.depth = greedy_depth(ir);
  return ir;
}

}  // namespace mpqls::qsim::exec
