// Peer-to-peer amplitude transport for distributed statevector execution.
// A `PeerChannel` is one rank's endpoint into a shard group of W = 2^k
// workers: `exchange` is a full-duplex pairwise swap (both sides send and
// receive the same byte count, matched by a sequence number), which is the
// only communication primitive the distributed executor needs — high-qubit
// gates pair rank r with rank r ^ 2^(q-m), and the collectives below are
// butterflies of the same pairwise call.
//
// Two implementations:
//  * LocalPeerGroup — W in-process endpoints rendezvousing through a
//    shared mailbox. What the unit tests and bench/perf_dist_scaling use:
//    real plan + real kernels, no sockets.
//  * net::HttpPeerChannel (src/net/shard_exchange.hpp) — frames POSTed to
//    the peer daemon's /v1/shard/exchange, received through a ShardHub.
//
// Determinism contract: every rank must issue the same sequence of
// exchanges/collectives in the same order (they all replay the same plan),
// and `seq` must be strictly increasing per rank pair so delayed network
// frames can never satisfy a later round.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpqls::qsim::exec::dist {

/// Transport failure (peer unreachable, deadline expired, group torn
/// down). The distributed solve fails with this message; the refinement
/// loop never sees a half-finished exchange.
class DistTransportError : public std::runtime_error {
 public:
  explicit DistTransportError(const std::string& what)
      : std::runtime_error("dist: " + what) {}
};

class PeerChannel {
 public:
  virtual ~PeerChannel() = default;

  /// Full-duplex pairwise swap with `peer`: ship `bytes` from `send`,
  /// block until the peer's matching exchange (same seq, mirrored ranks,
  /// same byte count) lands in `recv`. Throws DistTransportError on
  /// timeout or byte-count mismatch; never returns partial data.
  virtual void exchange(std::uint32_t peer, std::uint64_t seq, const void* send, void* recv,
                        std::size_t bytes) = 0;
};

/// Deterministic butterfly allreduce-sum over all W = 2^k ranks: k
/// pairwise exchanges of the `count` doubles in `data`, combining at each
/// stage as lower-rank value + higher-rank value. The combine order is a
/// fixed binary tree over the rank order, so every rank finishes with the
/// bitwise-identical sum — the property that keeps the lockstep
/// refinement loop's control flow identical on every rank. `seq` is
/// advanced once per stage.
void allreduce_sum(PeerChannel& channel, std::uint32_t rank, std::uint32_t world_log2,
                   std::uint64_t& seq, double* data, std::size_t count);

/// W in-process channel endpoints over one shared mailbox. exchange()
/// deposits a pointer to the caller's send buffer and blocks until the
/// peer's matching deposit is copied out — zero sockets, full rendezvous
/// semantics, so executor/solver tests exercise the exact code path the
/// networked channel drives.
class LocalPeerGroup {
 public:
  explicit LocalPeerGroup(std::uint32_t world,
                          std::chrono::milliseconds timeout = std::chrono::milliseconds(60000));

  std::uint32_t world() const { return world_; }

  /// Endpoint for `rank`. The returned channel shares this group's
  /// lifetime bookkeeping: the group must outlive every endpoint.
  std::shared_ptr<PeerChannel> channel(std::uint32_t rank);

 private:
  struct Deposit {
    const void* data = nullptr;
    std::size_t bytes = 0;
    bool consumed = false;
  };
  /// (from, to, seq) -> pending deposit.
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

  class Endpoint;

  void exchange(std::uint32_t me, std::uint32_t peer, std::uint64_t seq, const void* send,
                void* recv, std::size_t bytes);

  std::uint32_t world_;
  std::chrono::milliseconds timeout_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, Deposit> deposits_;
};

/// Rendezvous between an external transport's receive side and the
/// solving thread: the daemon deposits incoming exchange payloads keyed
/// by (group, from-rank, seq); the HttpPeerChannel awaits its
/// counterpart. Also the registry of active shard groups that
/// /v1/healthz reports.
class ShardHub {
 public:
  explicit ShardHub(std::size_t max_pending_bytes = std::size_t{256} << 20)
      : max_pending_bytes_(max_pending_bytes) {}

  /// Park one received payload. Returns false (payload dropped) when the
  /// pending-byte budget is exhausted — the awaiting side then times out
  /// and fails the solve instead of the process growing without bound.
  bool deposit(std::uint64_t group, std::uint32_t from, std::uint64_t seq, std::string payload);

  /// Block until the matching deposit arrives and copy it into `recv`.
  /// Throws DistTransportError on deadline or when the payload size does
  /// not match `bytes`.
  void await(std::uint64_t group, std::uint32_t from, std::uint64_t seq, void* recv,
             std::size_t bytes, std::chrono::milliseconds timeout);

  /// Drop every parked payload of `group` (job teardown).
  void clear_group(std::uint64_t group);

  struct GroupInfo {
    std::uint64_t group = 0;
    std::uint32_t rank = 0;
    std::uint32_t world = 1;
    std::vector<std::string> peers;  ///< "host:port" per rank
  };
  void register_group(GroupInfo info);
  void unregister_group(std::uint64_t group);
  std::vector<GroupInfo> active_groups() const;

 private:
  using Key = std::tuple<std::uint64_t, std::uint32_t, std::uint64_t>;

  std::size_t max_pending_bytes_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::string> pending_;
  std::size_t pending_bytes_ = 0;
  std::map<std::uint64_t, GroupInfo> groups_;
};

}  // namespace mpqls::qsim::exec::dist
