// Replays a rank-specialized plan against one shard. Local runs go
// straight through `panel_apply_op<1, T>` — the identical kernel bodies a
// single-node one-lane StatePanel replay executes, which is what makes
// the distributed double path bitwise-comparable to single-node replay.
//
// An exchange step with h partition-qubit targets assembles the widened
// 2^(m+h) register from the 2^h partner shards with an h-round butterfly
// allgather (round j swaps everything held so far with the partner across
// rank bit peer_bits[j]), applies the step's single wide op through the
// same panel kernels (partition targets remapped to qubits m..m+h-1, so
// the wide pairs are exactly the global pairs), and copies this rank's
// slot back out. Every partner computes the full wide update — 2^h-fold
// redundant flops, but h <= max_fuse_qubits keeps that small and it buys
// zero post-exchange synchronization.
//
// Exchange payload layout: per slot, the re plane then the im plane, in
// the sender's ascending slot order (slot = the partition-target bit
// pattern the data belongs to — identical on both sides, so no further
// negotiation).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/contracts.hpp"
#include "common/timer.hpp"
#include "qsim/exec/dist/dist_state.hpp"
#include "qsim/exec/dist/exchange_plan.hpp"
#include "qsim/exec/dist/peer_channel.hpp"
#include "qsim/exec/kernels.hpp"

namespace mpqls::qsim::exec::dist {

/// Cumulative counters for one or more replays (the mpqls_dist_* series).
struct DistRunMetrics {
  std::uint64_t exchange_rounds = 0;  ///< pairwise exchanges performed
  std::uint64_t bytes_moved = 0;      ///< bytes sent (the peer sends as many back)
  double exchange_seconds = 0.0;      ///< packing + transport + wide-op apply
  double local_seconds = 0.0;         ///< local-run kernel time
};

template <typename T>
void run_rank_program(const RankProgram<T>& rp, DistState<T>& state, PeerChannel& channel,
                      std::uint64_t& seq, DistRunMetrics* metrics = nullptr) {
  using C = exec_compute_t<T>;
  expects(state.local_qubits() == rp.local_qubits && state.rank() == rp.rank,
          "dist exec: plan/state shape mismatch");
  const std::size_t dim = state.dim();
  const std::int64_t n = static_cast<std::int64_t>(dim);
  std::vector<C> scratch;
  std::vector<T> wide_re, wide_im;
  std::vector<T> sendbuf, recvbuf;

  for (const auto& step : rp.steps) {
    {
      Timer timer;
      for (const auto& op : step.local.ops) {
        kernels::panel_apply_op<1>(op, state.re(), state.im(), n, 1, scratch);
      }
      if (metrics) metrics->local_seconds += timer.seconds();
    }
    if (!step.has_exchange) continue;
    if (!step.fires) {
      // Every rank must advance the sequence counter identically even when
      // its shard group skips the step, or a later exchange that crosses
      // groups pairs mismatched sequence numbers and deadlocks.
      seq += step.peer_bits.size();
      continue;
    }

    Timer timer;
    const std::uint32_t h = static_cast<std::uint32_t>(step.peer_bits.size());
    const std::size_t slots = std::size_t{1} << h;
    wide_re.assign(dim * slots, T{});
    wide_im.assign(dim * slots, T{});

    // My slot: the partition-target bits of this rank.
    std::uint32_t myslot = 0;
    for (std::uint32_t j = 0; j < h; ++j) {
      if ((rp.rank >> step.peer_bits[j]) & 1u) myslot |= 1u << j;
    }
    std::memcpy(wide_re.data() + myslot * dim, state.re(), dim * sizeof(T));
    std::memcpy(wide_im.data() + myslot * dim, state.im(), dim * sizeof(T));

    // Butterfly allgather of the partner shards.
    std::vector<std::uint32_t> held{myslot};
    for (std::uint32_t j = 0; j < h; ++j) {
      const std::uint32_t peer = rp.rank ^ (1u << step.peer_bits[j]);
      const std::size_t batch = held.size();
      const std::size_t plane_bytes = dim * sizeof(T);
      sendbuf.resize(batch * dim * 2);
      for (std::size_t i = 0; i < batch; ++i) {
        std::memcpy(sendbuf.data() + i * dim * 2, wide_re.data() + held[i] * dim, plane_bytes);
        std::memcpy(sendbuf.data() + i * dim * 2 + dim, wide_im.data() + held[i] * dim,
                    plane_bytes);
      }
      recvbuf.resize(batch * dim * 2);
      const std::size_t bytes = batch * dim * 2 * sizeof(T);
      channel.exchange(peer, seq++, sendbuf.data(), recvbuf.data(), bytes);
      // The peer's held set is mine mirrored across bit j, sent in its
      // ascending order; mirroring preserves the relative order of a set
      // whose members all share the same bit-j value.
      std::vector<std::uint32_t> theirs(batch);
      for (std::size_t i = 0; i < batch; ++i) theirs[i] = held[i] ^ (1u << j);
      std::sort(theirs.begin(), theirs.end());
      for (std::size_t i = 0; i < batch; ++i) {
        std::memcpy(wide_re.data() + theirs[i] * dim, recvbuf.data() + i * dim * 2, plane_bytes);
        std::memcpy(wide_im.data() + theirs[i] * dim, recvbuf.data() + i * dim * 2 + dim,
                    plane_bytes);
      }
      held.insert(held.end(), theirs.begin(), theirs.end());
      std::sort(held.begin(), held.end());
      if (metrics) {
        ++metrics->exchange_rounds;
        metrics->bytes_moved += bytes;
      }
    }

    for (const auto& op : step.wide.ops) {
      kernels::panel_apply_op<1>(op, wide_re.data(), wide_im.data(),
                                 static_cast<std::int64_t>(dim * slots), 1, scratch);
    }
    std::memcpy(state.re(), wide_re.data() + myslot * dim, dim * sizeof(T));
    std::memcpy(state.im(), wide_im.data() + myslot * dim, dim * sizeof(T));
    if (metrics) metrics->exchange_seconds += timer.seconds();
  }
}

}  // namespace mpqls::qsim::exec::dist
