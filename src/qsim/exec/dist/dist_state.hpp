// One rank's shard of a distributed statevector. The 2^n amplitudes of
// the full register are partitioned across W = 2^k ranks by the k highest
// qubit indices: rank r owns every global amplitude whose top-k bits equal
// r, i.e. global index g = (r << m) | i for local index i < 2^m with
// m = n - k local qubits. The shard is stored as split re/im planes in
// the one-lane panel layout, so the exact `panel_apply_op<1, T>` kernels
// that execute single-node programs execute the local slices here too —
// which is what makes shard-vs-single-node replay bitwise-comparable.
//
// Reductions return *partial* sums over the owned index range, accumulated
// in double in ascending global-index order (mirroring StatePanel's
// accumulation); callers combine partials across ranks with the
// deterministic allreduce in peer_channel.hpp.
#pragma once

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace mpqls::qsim::exec::dist {

template <typename T>
class DistState {
 public:
  DistState(std::uint32_t num_qubits, std::uint32_t world_log2, std::uint32_t rank)
      : num_qubits_(num_qubits), world_log2_(world_log2), rank_(rank) {
    expects(world_log2 <= num_qubits, "dist: more shard bits than qubits");
    expects(rank < (1u << world_log2), "dist: rank out of range");
    local_qubits_ = num_qubits - world_log2;
    expects(local_qubits_ <= 30, "dist: shard too wide");
    dim_ = std::size_t{1} << local_qubits_;
    re_.assign(dim_, T{});
    im_.assign(dim_, T{});
    // |0…0> lives on rank 0.
    if (rank_ == 0) re_[0] = T{1};
  }

  std::uint32_t num_qubits() const { return num_qubits_; }
  std::uint32_t local_qubits() const { return local_qubits_; }
  std::uint32_t world_log2() const { return world_log2_; }
  std::uint32_t rank() const { return rank_; }
  std::size_t dim() const { return dim_; }
  /// First global index this rank owns; the owned range is
  /// [base_index, base_index + dim).
  std::uint64_t base_index() const { return std::uint64_t{rank_} << local_qubits_; }
  bool owns(std::uint64_t global) const { return (global >> local_qubits_) == rank_; }

  T* re() { return re_.data(); }
  T* im() { return im_.data(); }
  const T* re() const { return re_.data(); }
  const T* im() const { return im_.data(); }

  std::complex<double> amp_global(std::uint64_t global) const {
    expects(owns(global), "dist: amplitude not owned by this rank");
    const std::size_t i = static_cast<std::size_t>(global & (dim_ - 1));
    return {static_cast<double>(re_[i]), static_cast<double>(im_[i])};
  }

  /// Overwrite the shard with this rank's slice of the embedding of a real
  /// vector: global amplitude g is values[g] for g < values.size() and 0
  /// above — the distributed form of StatePanel::load_lane_real.
  void load_global_real(const std::vector<double>& values) {
    expects(values.size() <= (std::uint64_t{1} << num_qubits_),
            "dist: vector wider than register");
    const std::uint64_t base = base_index();
    for (std::size_t i = 0; i < dim_; ++i) {
      const std::uint64_t g = base + i;
      re_[i] = g < values.size() ? static_cast<T>(values[g]) : T{};
      im_[i] = T{};
    }
  }

  /// Partial squared norm over the owned range (double accumulator in
  /// index order). Allreduce, then sqrt.
  double norm_squared_partial() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      acc += static_cast<double>(re_[i]) * static_cast<double>(re_[i]) +
             static_cast<double>(im_[i]) * static_cast<double>(im_[i]);
    }
    return acc;
  }

  /// Partial probability that every qubit in `zeros` (global indices)
  /// measures 0 and every qubit in `ones` measures 1. A rank whose own
  /// high bits conflict with the masks contributes an exact 0.0, so the
  /// allreduced total equals the single-node accumulation bitwise whenever
  /// the matching subspace lives on one rank.
  double probability_match_partial(const std::vector<std::uint32_t>& zeros,
                                   const std::vector<std::uint32_t>& ones) const {
    const auto [zero_mask, one_mask] = masks(zeros, ones);
    const std::uint64_t base = base_index();
    if ((base & zero_mask) != 0) return 0.0;
    double p = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      const std::uint64_t g = base + i;
      if ((g & zero_mask) != 0 || (g & one_mask) != one_mask) continue;
      p += static_cast<double>(re_[i]) * static_cast<double>(re_[i]) +
           static_cast<double>(im_[i]) * static_cast<double>(im_[i]);
    }
    return p;
  }

  /// Project onto the subspace where `zeros` measure 0 and `ones` measure
  /// 1, scaling survivors by 1/sqrt(p) for the *globally allreduced*
  /// pre-projection probability `p` the caller obtained first. Mirrors
  /// StatePanel::postselect's arithmetic: inv is rounded to T once, then
  /// each surviving amplitude is scaled by it; non-matching amplitudes are
  /// zeroed.
  void postselect_scale(const std::vector<std::uint32_t>& zeros,
                        const std::vector<std::uint32_t>& ones, double p) {
    expects(p > 0.0, "dist postselect: zero-probability branch");
    const T inv = static_cast<T>(1.0 / std::sqrt(p));
    const auto [zero_mask, one_mask] = masks(zeros, ones);
    const std::uint64_t base = base_index();
    for (std::size_t i = 0; i < dim_; ++i) {
      const std::uint64_t g = base + i;
      if ((g & zero_mask) == 0 && (g & one_mask) == one_mask) {
        re_[i] *= inv;
        im_[i] *= inv;
      } else {
        re_[i] = T{};
        im_[i] = T{};
      }
    }
  }

 private:
  static std::pair<std::uint64_t, std::uint64_t> masks(const std::vector<std::uint32_t>& zeros,
                                                       const std::vector<std::uint32_t>& ones) {
    std::uint64_t zero_mask = 0, one_mask = 0;
    for (auto qb : zeros) zero_mask |= std::uint64_t{1} << qb;
    for (auto qb : ones) one_mask |= std::uint64_t{1} << qb;
    return {zero_mask, one_mask};
  }

  std::uint32_t num_qubits_;
  std::uint32_t world_log2_;
  std::uint32_t rank_;
  std::uint32_t local_qubits_ = 0;
  std::size_t dim_ = 0;
  std::vector<T> re_, im_;
};

}  // namespace mpqls::qsim::exec::dist
