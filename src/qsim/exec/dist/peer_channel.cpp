#include "qsim/exec/dist/peer_channel.hpp"

#include <tuple>
#include <utility>

#include "common/contracts.hpp"

namespace mpqls::qsim::exec::dist {

void allreduce_sum(PeerChannel& channel, std::uint32_t rank, std::uint32_t world_log2,
                   std::uint64_t& seq, double* data, std::size_t count) {
  if (world_log2 == 0 || count == 0) return;
  std::vector<double> recv(count);
  for (std::uint32_t bit = 0; bit < world_log2; ++bit) {
    const std::uint32_t peer = rank ^ (1u << bit);
    channel.exchange(peer, seq++, data, recv.data(), count * sizeof(double));
    // Fixed combine order (lower rank's value first) so both sides of the
    // pair — and transitively all W ranks — compute the bitwise-identical
    // sum regardless of message arrival order.
    if ((rank & (1u << bit)) == 0) {
      for (std::size_t i = 0; i < count; ++i) data[i] = data[i] + recv[i];
    } else {
      for (std::size_t i = 0; i < count; ++i) data[i] = recv[i] + data[i];
    }
  }
}

// ---------------------------------------------------------------------------
// LocalPeerGroup
// ---------------------------------------------------------------------------

class LocalPeerGroup::Endpoint final : public PeerChannel {
 public:
  Endpoint(LocalPeerGroup* group, std::uint32_t rank) : group_(group), rank_(rank) {}

  void exchange(std::uint32_t peer, std::uint64_t seq, const void* send, void* recv,
                std::size_t bytes) override {
    group_->exchange(rank_, peer, seq, send, recv, bytes);
  }

 private:
  LocalPeerGroup* group_;
  std::uint32_t rank_;
};

LocalPeerGroup::LocalPeerGroup(std::uint32_t world, std::chrono::milliseconds timeout)
    : world_(world), timeout_(timeout) {
  expects(world >= 1 && (world & (world - 1)) == 0, "dist: world size must be a power of two");
}

std::shared_ptr<PeerChannel> LocalPeerGroup::channel(std::uint32_t rank) {
  expects(rank < world_, "dist: rank out of range");
  return std::make_shared<Endpoint>(this, rank);
}

void LocalPeerGroup::exchange(std::uint32_t me, std::uint32_t peer, std::uint64_t seq,
                              const void* send, void* recv, std::size_t bytes) {
  expects(peer < world_ && peer != me, "dist: invalid exchange peer");
  const Key mine{me, peer, seq};
  const Key theirs{peer, me, seq};
  std::unique_lock<std::mutex> lock(mutex_);
  deposits_[mine] = Deposit{send, bytes, false};
  cv_.notify_all();

  // Take the peer's deposit.
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  if (!cv_.wait_until(lock, deadline, [&] { return deposits_.count(theirs) != 0; })) {
    deposits_.erase(mine);
    throw DistTransportError("exchange timeout waiting for rank " + std::to_string(peer));
  }
  auto their_it = deposits_.find(theirs);
  if (their_it->second.bytes != bytes) {
    deposits_.erase(mine);
    throw DistTransportError("exchange size mismatch with rank " + std::to_string(peer));
  }
  std::memcpy(recv, their_it->second.data, bytes);
  their_it->second.consumed = true;
  cv_.notify_all();

  // Hold our send buffer valid until the peer has copied it out.
  if (!cv_.wait_until(lock, deadline, [&] {
        auto it = deposits_.find(mine);
        return it == deposits_.end() || it->second.consumed;
      })) {
    deposits_.erase(mine);
    throw DistTransportError("exchange timeout delivering to rank " + std::to_string(peer));
  }
  deposits_.erase(mine);
}

// ---------------------------------------------------------------------------
// ShardHub
// ---------------------------------------------------------------------------

bool ShardHub::deposit(std::uint64_t group, std::uint32_t from, std::uint64_t seq,
                       std::string payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_bytes_ + payload.size() > max_pending_bytes_) return false;
  pending_bytes_ += payload.size();
  pending_[Key{group, from, seq}] = std::move(payload);
  cv_.notify_all();
  return true;
}

void ShardHub::await(std::uint64_t group, std::uint32_t from, std::uint64_t seq, void* recv,
                     std::size_t bytes, std::chrono::milliseconds timeout) {
  const Key key{group, from, seq};
  std::unique_lock<std::mutex> lock(mutex_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  if (!cv_.wait_until(lock, deadline, [&] { return pending_.count(key) != 0; })) {
    throw DistTransportError("no exchange frame from rank " + std::to_string(from) +
                             " (seq " + std::to_string(seq) + ") within deadline");
  }
  auto it = pending_.find(key);
  const std::string payload = std::move(it->second);
  pending_bytes_ -= payload.size();
  pending_.erase(it);
  lock.unlock();
  if (payload.size() != bytes) {
    throw DistTransportError("exchange frame from rank " + std::to_string(from) + " carries " +
                             std::to_string(payload.size()) + " bytes, expected " +
                             std::to_string(bytes));
  }
  std::memcpy(recv, payload.data(), bytes);
}

void ShardHub::clear_group(std::uint64_t group) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (std::get<0>(it->first) == group) {
      pending_bytes_ -= it->second.size();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardHub::register_group(GroupInfo info) {
  std::lock_guard<std::mutex> lock(mutex_);
  groups_[info.group] = std::move(info);
}

void ShardHub::unregister_group(std::uint64_t group) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    groups_.erase(group);
  }
  clear_group(group);
}

std::vector<ShardHub::GroupInfo> ShardHub::active_groups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GroupInfo> out;
  out.reserve(groups_.size());
  for (const auto& [id, info] : groups_) out.push_back(info);
  return out;
}

}  // namespace mpqls::qsim::exec::dist
