// Compiles a FusedIr into a distributed replay plan for W = 2^k shards.
//
// Qubits split at m = n - k: qubits [0, m) are *local* (both halves of any
// such gate pair live in the same shard), qubits [m, n) are *partition*
// qubits (their bit value selects the owning rank). An op classifies as:
//
//  * local     — no partition-qubit targets. Partition-qubit *controls*
//                cost nothing: each rank evaluates them against its own
//                rank bits once at plan time (the op drops out entirely on
//                ranks where they fail). Diagonal ops are local even with
//                partition-qubit targets — each rank slices the payload
//                entries its rank bits select.
//  * exchange  — a non-diagonal op with h >= 1 partition-qubit targets.
//                The executor runs it on a widened 2^(m+h) register
//                assembled from the 2^h partner shards (h pairwise
//                butterfly rounds), with the partition targets remapped to
//                qubits m..m+h-1, through the same panel kernels local ops
//                use. Costs h exchange rounds and (2^h - 1) shard
//                volumes of traffic.
//
// The scheduling pass then shrinks the exchange count without perturbing
// per-amplitude *values*:
//
//  1. Exact-diagonal demotion: kApply1q/kDense ops with partition-qubit
//     targets whose off-diagonal entries are exact zeros (a structural
//     check — fusion keeps exact zeros exact) become kDiagonal, turning
//     would-be exchanges into payload slicing.
//  2. X-conjugation elimination: an exchange op that is an exact
//     (controlled) Pauli-X, separated from an identical closing X only by
//     diagonal-kind ops, is cancelled against it; each diagonal D in the
//     sandwich is rewritten to X·D·X — a diagonal over the union qubit
//     set whose entries are D's entries at the X-permuted index, so every
//     amplitude sees the identical multiplier sequence. This is the QSVT
//     phase-gadget shape (CPiX · Rz · CRz · CPiX) when compiled without
//     fusion: 2 exchange rounds per gadget collapse to 0, and the 2d+1
//     local runs between them collapse into one.
//
// Bitwise parity: replaying a plan reproduces a single-node one-lane
// panel replay of the same FusedIr *bit for bit* whenever no op changed
// kernel class, i.e. stats.demoted_diagonal == 0 and conjugated_ops == 0
// — local ops, payload-sliced diagonals, and widened exchange ops all run
// through the identical kernel instantiation on identical values. That
// covers the production path: default fusion compiles QSVT/HHL gadgets to
// kDiagonal windows up front, so neither rewrite fires. When a rewrite
// does fire (an unfused gate stream), the multiplier values are copied
// exactly but the multiply routes through the diagonal kernel instead of
// the 1q/dense kernel, whose FMA contraction may differ in the last ulp.
//
// `naive_rounds` counts the rounds a classification-blind schedule pays
// (one pairwise round per partition-qubit reference of every op, controls
// included); `scheduled_rounds` is what the plan actually executes. The
// pass asserts nothing itself — tests and bench/perf_dist_scaling compare
// the two.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "qsim/exec/compile.hpp"
#include "qsim/exec/program.hpp"

namespace mpqls::qsim::exec::dist {

class DistPlanError : public std::runtime_error {
 public:
  explicit DistPlanError(const std::string& what) : std::runtime_error("dist plan: " + what) {}
};

struct ScheduleStats {
  /// Pairwise exchange rounds of a classification-blind schedule: one per
  /// partition-qubit reference (target or control) of every op.
  std::uint64_t naive_rounds = 0;
  /// Rounds the scheduled plan executes (h per exchange op with h
  /// partition-qubit targets).
  std::uint64_t scheduled_rounds = 0;
  std::uint64_t demoted_diagonal = 0;      ///< ops rewritten by pass 1
  std::uint64_t eliminated_exchanges = 0;  ///< X ops cancelled by pass 2
  std::uint64_t conjugated_ops = 0;        ///< sandwich ops rewritten by pass 2
};

struct PlanOptions {
  /// Run the exchange-minimizing passes; false keeps the naive
  /// classification (the baseline the round counts are compared against —
  /// the ops still execute correctly, just with more exchanges).
  bool schedule = true;
};

/// One scheduled step, in full-register coordinates.
struct PlanOp {
  bool exchange = false;
  /// Exchange ops: the partition-qubit targets, ascending.
  std::vector<std::uint32_t> high_targets;
  FusedOp op;
};

struct ExchangePlan {
  std::uint32_t num_qubits = 0;
  std::uint32_t local_qubits = 0;
  std::uint32_t world_log2 = 0;
  std::vector<PlanOp> ops;
  ScheduleStats stats;
};

/// Classify + schedule `ir` for W = 2^world_log2 shards. world_log2 must
/// be >= 1 and < ir.num_qubits.
ExchangePlan build_exchange_plan(const FusedIr& ir, std::uint32_t world_log2,
                                 const PlanOptions& options = {});

/// The plan lowered to one rank, precision-agnostic: runs of local ops
/// (FusedIr over the m local qubits) separated by exchange descriptors
/// whose single op lives on the widened m+h register.
struct RankExchangeIr {
  /// False when the op's non-target partition-qubit controls fail for
  /// this rank's shard group — every rank of the 2^h partner group agrees
  /// (they share those bits), so the whole step is skipped: no traffic.
  bool fires = true;
  std::vector<std::uint32_t> high_targets;  ///< global qubit indices, ascending
  std::vector<std::uint32_t> peer_bits;     ///< rank-bit index per high target
  FusedIr wide;                             ///< single op over m+h qubits
};

struct RankStepIr {
  FusedIr local;  ///< over the m local qubits (possibly empty)
  std::optional<RankExchangeIr> exchange;
};

struct RankPlan {
  std::uint32_t num_qubits = 0;
  std::uint32_t local_qubits = 0;
  std::uint32_t world_log2 = 0;
  std::uint32_t rank = 0;
  std::vector<RankStepIr> steps;
};

RankPlan build_rank_plan(const ExchangePlan& plan, std::uint32_t rank);

/// RankPlan specialized to a statevector precision (exec::specialize, the
/// same pass single-node programs go through — op payloads round
/// identically).
template <typename T>
struct RankStep {
  Program<T> local;
  bool has_exchange = false;
  bool fires = true;
  std::vector<std::uint32_t> peer_bits;
  Program<T> wide;
};

template <typename T>
struct RankProgram {
  std::uint32_t num_qubits = 0;
  std::uint32_t local_qubits = 0;
  std::uint32_t world_log2 = 0;
  std::uint32_t rank = 0;
  std::vector<RankStep<T>> steps;
};

template <typename T>
RankProgram<T> specialize_rank(const ExchangePlan& plan, std::uint32_t rank) {
  const RankPlan rp = build_rank_plan(plan, rank);
  RankProgram<T> out;
  out.num_qubits = rp.num_qubits;
  out.local_qubits = rp.local_qubits;
  out.world_log2 = rp.world_log2;
  out.rank = rp.rank;
  out.steps.reserve(rp.steps.size());
  for (const auto& step : rp.steps) {
    RankStep<T> s;
    s.local = specialize<T>(step.local);
    if (step.exchange) {
      s.has_exchange = true;
      s.fires = step.exchange->fires;
      s.peer_bits = step.exchange->peer_bits;
      s.wide = specialize<T>(step.exchange->wide);
    }
    out.steps.push_back(std::move(s));
  }
  return out;
}

}  // namespace mpqls::qsim::exec::dist
