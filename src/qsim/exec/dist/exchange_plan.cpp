#include "qsim/exec/dist/exchange_plan.hpp"

#include <algorithm>
#include <bit>
#include <complex>
#include <utility>

#include "common/contracts.hpp"

namespace mpqls::qsim::exec::dist {

namespace {

using c64 = std::complex<double>;

std::uint64_t bit_of(std::uint32_t q) { return std::uint64_t{1} << q; }

std::vector<std::uint32_t> high_targets_of(const FusedOp& op, std::uint32_t local_qubits) {
  std::vector<std::uint32_t> out;
  for (auto q : op.targets) {
    if (q >= local_qubits) out.push_back(q);
  }
  return out;  // targets are sorted, so the filtered list stays sorted
}

std::uint32_t high_refs_of(const FusedOp& op, std::uint32_t num_qubits,
                           std::uint32_t local_qubits) {
  std::uint64_t refs = op.pos_mask | op.neg_mask;
  for (auto q : op.targets) refs |= bit_of(q);
  const std::uint64_t low_mask = (std::uint64_t{1} << local_qubits) - 1;
  refs &= ~low_mask;
  refs &= (num_qubits >= 64) ? ~std::uint64_t{0} : (bit_of(num_qubits) - 1);
  return static_cast<std::uint32_t>(std::popcount(refs));
}

/// Structural diagonality of a 1q/dense payload: every off-diagonal entry
/// is an exact 0 (fusion keeps exact zeros exact, so no tolerance).
bool payload_is_diagonal(const FusedOp& op) {
  if (op.kind == OpKind::kApply1q) return op.payload[1] == c64{} && op.payload[2] == c64{};
  if (op.kind != OpKind::kDense) return false;
  const std::size_t dim = std::size_t{1} << op.targets.size();
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      if (r != c && op.payload[r * dim + c] != c64{}) return false;
    }
  }
  return true;
}

/// Rewrite a structurally-diagonal kApply1q/kDense op as kDiagonal. The
/// diagonal kernel multiplies each amplitude by the identical double
/// entry the 1q/dense kernel would (the off-diagonal terms it drops are
/// exact zeros), so demotion is value-preserving.
FusedOp demote_to_diagonal(FusedOp op) {
  if (op.kind == OpKind::kApply1q) {
    op.payload = {op.payload[0], op.payload[3]};
  } else {
    const std::size_t dim = std::size_t{1} << op.targets.size();
    std::vector<c64> diag(dim);
    for (std::size_t r = 0; r < dim; ++r) diag[r] = op.payload[r * dim + r];
    op.payload = std::move(diag);
  }
  op.kind = OpKind::kDiagonal;
  return op;
}

bool is_exact_x(const FusedOp& op) {
  return op.kind == OpKind::kApply1q && op.payload[0] == c64{} && op.payload[3] == c64{} &&
         op.payload[1] == c64{1.0} && op.payload[2] == c64{1.0};
}

/// Diagonal-kind: an op whose matrix is diagonal in the computational
/// basis, i.e. one that commutes with the basis permutation a controlled-X
/// induces on the qubits it does not touch.
bool is_diagonal_kind(const FusedOp& op) {
  return op.kind == OpKind::kDiagonal || op.kind == OpKind::kGlobalPhase ||
         (op.kind == OpKind::kApply1q && payload_is_diagonal(op));
}

std::vector<std::uint32_t> mask_qubits(std::uint64_t mask) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t q = 0; mask >> q; ++q) {
    if (mask & bit_of(q)) out.push_back(q);
  }
  return out;
}

/// X·D·X for a diagonal-kind D and an exact controlled-X: a mask-free
/// kDiagonal over the union qubit set whose entry at basis pattern s is
/// D's multiplier at the X-permuted pattern (target bit flipped where the
/// X's controls fire). Entries are copied, not recomputed, so every
/// amplitude keeps its exact multiplier. Returns nullopt when the union
/// grows impractically wide (the caller then keeps the X pair).
std::optional<FusedOp> conjugate_by_x(const FusedOp& d, const FusedOp& x) {
  if (d.kind == OpKind::kGlobalPhase) return d;  // commutes with any permutation
  const std::uint32_t x_target = x.targets[0];
  const std::uint64_t d_masks = d.pos_mask | d.neg_mask;
  std::uint64_t touched = d_masks | x.pos_mask | x.neg_mask | bit_of(x_target);
  for (auto q : d.targets) touched |= bit_of(q);
  // D untouched when it never reads the X target.
  std::uint64_t d_qubits = d_masks;
  for (auto q : d.targets) d_qubits |= bit_of(q);
  if ((d_qubits & bit_of(x_target)) == 0) return d;

  const auto qubits = mask_qubits(touched);
  if (qubits.size() > 12) return std::nullopt;  // 4096-entry payload cap
  const std::size_t dim = std::size_t{1} << qubits.size();

  // Position of each D target inside the union (targets ascending in both).
  std::vector<std::size_t> tpos;
  for (auto t : d.targets) {
    const auto it = std::lower_bound(qubits.begin(), qubits.end(), t);
    tpos.push_back(static_cast<std::size_t>(it - qubits.begin()));
  }

  FusedOp out;
  out.kind = OpKind::kDiagonal;
  out.targets = qubits;
  out.source_gates = d.source_gates;
  out.payload.resize(dim);
  for (std::size_t s = 0; s < dim; ++s) {
    std::uint64_t pattern = 0;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
      if (s & (std::size_t{1} << i)) pattern |= bit_of(qubits[i]);
    }
    const bool x_fires =
        (pattern & x.pos_mask) == x.pos_mask && (pattern & x.neg_mask) == 0;
    const std::uint64_t h = x_fires ? (pattern ^ bit_of(x_target)) : pattern;
    const bool d_fires = (h & d.pos_mask) == d.pos_mask && (h & d.neg_mask) == 0;
    if (!d_fires) {
      out.payload[s] = c64{1.0};
      continue;
    }
    if (d.kind == OpKind::kApply1q) {
      out.payload[s] = (h & bit_of(d.targets[0])) ? d.payload[3] : d.payload[0];
    } else {
      std::size_t sub = 0;
      for (std::size_t t = 0; t < tpos.size(); ++t) {
        if (h & bit_of(qubits[tpos[t]])) sub |= std::size_t{1} << t;
      }
      out.payload[s] = d.payload[sub];
    }
  }
  return out;
}

bool same_shape(const FusedOp& a, const FusedOp& b) {
  return a.targets == b.targets && a.pos_mask == b.pos_mask && a.neg_mask == b.neg_mask;
}

}  // namespace

ExchangePlan build_exchange_plan(const FusedIr& ir, std::uint32_t world_log2,
                                 const PlanOptions& options) {
  expects(world_log2 >= 1, "dist plan: need at least 2 shards");
  expects(world_log2 < ir.num_qubits, "dist plan: more shard bits than qubits");
  ExchangePlan plan;
  plan.num_qubits = ir.num_qubits;
  plan.world_log2 = world_log2;
  plan.local_qubits = ir.num_qubits - world_log2;
  const std::uint32_t m = plan.local_qubits;

  for (const auto& op : ir.ops) {
    if (op.kind != OpKind::kGlobalPhase) {
      plan.stats.naive_rounds += high_refs_of(op, ir.num_qubits, m);
    }
  }

  // Classification (+ pass 1, exact-diagonal demotion).
  std::vector<PlanOp> ops;
  ops.reserve(ir.ops.size());
  for (const auto& op : ir.ops) {
    PlanOp p;
    p.op = op;
    auto high = high_targets_of(op, m);
    if (!high.empty() && op.kind != OpKind::kDiagonal) {
      if (options.schedule && payload_is_diagonal(op)) {
        p.op = demote_to_diagonal(std::move(p.op));
        ++plan.stats.demoted_diagonal;
      } else {
        p.exchange = true;
        p.high_targets = std::move(high);
      }
    }
    ops.push_back(std::move(p));
  }

  // Pass 2: X-conjugation elimination, to fixpoint.
  if (options.schedule) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < ops.size() && !changed; ++i) {
        if (!ops[i].exchange || !is_exact_x(ops[i].op)) continue;
        for (std::size_t j = i + 1; j < ops.size(); ++j) {
          if (ops[j].exchange) {
            if (!is_exact_x(ops[j].op) || !same_shape(ops[i].op, ops[j].op)) break;
            // Conjugate the sandwich; bail (keeping both X ops) if any
            // rewrite would blow the payload cap.
            std::vector<FusedOp> rewritten;
            bool ok = true;
            for (std::size_t s = i + 1; s < j; ++s) {
              auto conj = conjugate_by_x(ops[s].op, ops[i].op);
              if (!conj) {
                ok = false;
                break;
              }
              rewritten.push_back(std::move(*conj));
            }
            if (!ok) break;
            plan.stats.eliminated_exchanges += 2;
            plan.stats.conjugated_ops += rewritten.size();
            std::vector<PlanOp> next;
            next.reserve(ops.size() - 2);
            next.insert(next.end(), ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(i));
            for (auto& r : rewritten) {
              PlanOp p;
              p.op = std::move(r);
              next.push_back(std::move(p));
            }
            next.insert(next.end(), ops.begin() + static_cast<std::ptrdiff_t>(j) + 1, ops.end());
            ops = std::move(next);
            changed = true;
            break;
          }
          if (!is_diagonal_kind(ops[j].op)) break;  // non-diagonal local op blocks the scan
        }
      }
    }
  }

  for (const auto& p : ops) {
    if (p.exchange) plan.stats.scheduled_rounds += p.high_targets.size();
  }
  plan.ops = std::move(ops);
  return plan;
}

namespace {

/// Evaluate an op's partition-qubit control bits against one rank's
/// high-bit pattern; returns false when the op never fires on that shard.
bool high_masks_fire(const FusedOp& op, std::uint64_t rank_pattern, std::uint64_t high_mask) {
  const std::uint64_t hp = op.pos_mask & high_mask;
  const std::uint64_t hn = op.neg_mask & high_mask;
  return (rank_pattern & hp) == hp && (rank_pattern & hn) == 0;
}

}  // namespace

RankPlan build_rank_plan(const ExchangePlan& plan, std::uint32_t rank) {
  expects(rank < (1u << plan.world_log2), "dist plan: rank out of range");
  const std::uint32_t m = plan.local_qubits;
  const std::uint64_t low_mask = (std::uint64_t{1} << m) - 1;
  const std::uint64_t high_mask = ((std::uint64_t{1} << plan.num_qubits) - 1) & ~low_mask;
  const std::uint64_t rank_pattern = std::uint64_t{rank} << m;

  RankPlan rp;
  rp.num_qubits = plan.num_qubits;
  rp.local_qubits = m;
  rp.world_log2 = plan.world_log2;
  rp.rank = rank;

  RankStepIr step;
  step.local.num_qubits = m;

  auto push_local = [&](FusedOp op) {
    step.local.ops.push_back(std::move(op));
    ++step.local.stats.ops;
  };

  for (const auto& p : plan.ops) {
    if (!p.exchange) {
      const FusedOp& op = p.op;
      if (!high_masks_fire(op, rank_pattern, high_mask)) continue;  // shard never fires
      FusedOp local = op;
      local.pos_mask &= low_mask;
      local.neg_mask &= low_mask;
      if (op.kind == OpKind::kDiagonal) {
        // Slice the payload down to the entries this rank's partition
        // bits select. Targets are ascending, so the low targets are a
        // prefix of the list and the high targets index the top payload
        // bits.
        std::uint32_t n_low = 0;
        while (n_low < op.targets.size() && op.targets[n_low] < m) ++n_low;
        const std::uint32_t n_high = static_cast<std::uint32_t>(op.targets.size()) - n_low;
        if (n_high > 0) {
          std::uint64_t fixed = 0;
          for (std::uint32_t j = 0; j < n_high; ++j) {
            const std::uint32_t q = op.targets[n_low + j];
            if ((rank >> (q - m)) & 1u) fixed |= std::uint64_t{1} << j;
          }
          std::vector<c64> sliced(std::size_t{1} << n_low);
          for (std::size_t s = 0; s < sliced.size(); ++s) {
            sliced[s] = op.payload[s | (fixed << n_low)];
          }
          local.targets.assign(op.targets.begin(), op.targets.begin() + n_low);
          local.payload = std::move(sliced);
          if (n_low == 0) {
            // Every owned amplitude gets the same multiplier. Stay in the
            // diagonal kernel (dummy low target, identical entries) rather
            // than switching to the global-phase kernel: the multiply must
            // go through the same kernel expression as single-node replay
            // or FMA contraction can differ in the last ulp.
            const c64 v = local.payload[0];
            local.targets = {0};
            local.payload = {v, v};
          }
        }
      }
      push_local(std::move(local));
      continue;
    }

    // Exchange step: close the local run, emit the wide single-op ir.
    RankExchangeIr ex;
    ex.high_targets = p.high_targets;
    const std::uint32_t h = static_cast<std::uint32_t>(p.high_targets.size());
    for (auto q : p.high_targets) ex.peer_bits.push_back(q - m);
    // Non-target partition-qubit controls: shared across the 2^h partner
    // group (the group only varies the target bits), so one verdict
    // serves every member.
    std::uint64_t target_high = 0;
    for (auto q : p.high_targets) target_high |= bit_of(q);
    FusedOp masked = p.op;
    masked.pos_mask &= ~target_high;  // targets are never mask bits; belt and braces
    masked.neg_mask &= ~target_high;
    ex.fires = high_masks_fire(masked, rank_pattern, high_mask);
    FusedOp wide = std::move(masked);
    wide.pos_mask &= low_mask;
    wide.neg_mask &= low_mask;
    for (auto& q : wide.targets) {
      if (q >= m) {
        // The j-th high target lands on wide qubit m+j; ascending order
        // (and with it the payload's index convention) is preserved.
        const auto it = std::lower_bound(p.high_targets.begin(), p.high_targets.end(), q);
        q = m + static_cast<std::uint32_t>(it - p.high_targets.begin());
      }
    }
    ex.wide.num_qubits = m + h;
    ex.wide.stats.ops = 1;
    ex.wide.ops.push_back(std::move(wide));
    step.exchange = std::move(ex);
    rp.steps.push_back(std::move(step));
    step = RankStepIr{};
    step.local.num_qubits = m;
  }
  rp.steps.push_back(std::move(step));
  return rp;
}

}  // namespace mpqls::qsim::exec::dist
