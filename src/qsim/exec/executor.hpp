// Replays a compiled Program<T> against a Statevector<T>. The kernels are
// the reason to compile: amplitude pairs are enumerated directly (no
// skipped-index branches on the uncontrolled hot path), gate matrices are
// already in the execution precision, and dense gather offsets come
// precomputed from the compiler. The executor is stateless — one program
// can be replayed from many threads onto distinct statevectors, which is
// how the solver service runs batched right-hand sides.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "qsim/exec/program.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim::exec {

template <typename T>
class Executor {
 public:
  using complex_type = std::complex<T>;

  /// Apply every op of `program` to `sv` in order. The program may be
  /// narrower than the register (mirrors Statevector::apply(Circuit)).
  /// Reentrant: scratch lives on this frame, so one Executor (and one
  /// Program) can serve concurrent solves on distinct statevectors.
  void run(const Program<T>& program, Statevector<T>& sv) const {
    expects((std::size_t{1} << program.num_qubits) <= sv.dim(),
            "exec: program wider than register");
    complex_type* amps = sv.data();
    const std::int64_t n = static_cast<std::int64_t>(sv.dim());
    std::vector<T> scratch;  // shared by the serial dense ops (re then im plane)
    for (const auto& op : program.ops) {
      switch (op.kind) {
        case OpKind::kApply1q:
          apply_1q(op, amps, n);
          break;
        case OpKind::kDense:
          apply_dense(op, amps, n, scratch);
          break;
        case OpKind::kDiagonal:
          apply_diagonal(op, amps, n);
          break;
        case OpKind::kGlobalPhase:
          apply_phase(op, amps, n);
          break;
      }
    }
  }

 private:
  /// Insert a zero at bit position `bit` (a single-bit mask) of a compacted
  /// index: enumerates exactly the indices whose `bit` is 0.
  static std::uint64_t expand_at(std::uint64_t compact, std::uint64_t bit) {
    const std::uint64_t low = compact & (bit - 1);
    return ((compact ^ low) << 1) | low;
  }

  /// Map a compacted loop index to the amplitude index the op touches:
  /// zeros inserted at every skipped bit (targets + controls, ascending),
  /// then the positive-control bits set. Branch-free control handling.
  static std::uint64_t expand_index(std::uint64_t compact, const CompiledOp<T>& op) {
    for (const auto bit : op.insert_bits) compact = expand_at(compact, bit);
    return compact | op.set_mask;
  }

  // Below-threshold registers skip the OpenMP region entirely: entering a
  // (even one-thread) parallel region per op costs more than a whole
  // small-register sweep, and the compiled hot path runs thousands of ops.
  static constexpr std::int64_t kParallelPairs = std::int64_t{1} << 13;
  static constexpr std::int64_t kParallelBlocks = std::int64_t{1} << 11;
  static constexpr std::int64_t kParallelAmps = std::int64_t{1} << 14;

  static void apply_1q(const CompiledOp<T>& op, complex_type* amps, std::int64_t n) {
    const std::uint64_t bit = op.target_bit;
    const std::int64_t pairs = n >> op.free_shift;
    // Below the lowest re-inserted bit, consecutive loop indices map to
    // consecutive amplitudes — process those runs with a vectorizable
    // split re/im inner loop. chunk is a power of two and always divides
    // `pairs` (there are at least log2(chunk) free bits below every
    // inserted bit).
    const std::int64_t chunk =
        std::min<std::int64_t>(static_cast<std::int64_t>(op.insert_bits[0]), pairs);
    const T m00r = op.m00.real(), m00i = op.m00.imag();
    const T m01r = op.m01.real(), m01i = op.m01.imag();
    const T m10r = op.m10.real(), m10i = op.m10.imag();
    const T m11r = op.m11.real(), m11i = op.m11.imag();
    auto chunk_kernel = [&](std::int64_t ii) {
      const std::uint64_t i = expand_index(static_cast<std::uint64_t>(ii), op);
      T* p0 = reinterpret_cast<T*>(amps + i);
      T* p1 = reinterpret_cast<T*>(amps + (i | bit));
#pragma omp simd
      for (std::int64_t l = 0; l < chunk; ++l) {
        const T re0 = p0[2 * l], im0 = p0[2 * l + 1];
        const T re1 = p1[2 * l], im1 = p1[2 * l + 1];
        p0[2 * l] = m00r * re0 - m00i * im0 + m01r * re1 - m01i * im1;
        p0[2 * l + 1] = m00r * im0 + m00i * re0 + m01r * im1 + m01i * re1;
        p1[2 * l] = m10r * re0 - m10i * im0 + m11r * re1 - m11i * im1;
        p1[2 * l + 1] = m10r * im0 + m10i * re0 + m11r * im1 + m11i * re1;
      }
    };
    if (pairs >= kParallelPairs) {
#pragma omp parallel for
      for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
    } else {
      for (std::int64_t ii = 0; ii < pairs; ii += chunk) chunk_kernel(ii);
    }
  }

  static void apply_dense(const CompiledOp<T>& op, complex_type* amps, std::int64_t n,
                          std::vector<T>& run_scratch) {
    const std::uint32_t k = op.num_targets;
    const std::size_t sub_dim = std::size_t{1} << k;
    const std::int64_t blocks = n >> op.free_shift;
    const std::uint64_t* offsets = op.offsets.data();
    const T* mre = op.payload_re.data();
    const T* mim = op.payload_im.data();
    // The sub-state and the matrix rows are processed in split
    // real/imaginary planes: the inner product below is then contiguous
    // scalar arrays, which the compiler vectorizes (the interleaved
    // complex layout would not).
    auto block_kernel = [&](std::int64_t bb, T* sre, T* sim) {
      // Expand the block index into the base index: target and control
      // bits re-inserted, positive controls set.
      const std::uint64_t base = expand_index(static_cast<std::uint64_t>(bb), op);
      for (std::size_t s = 0; s < sub_dim; ++s) {
        const complex_type a = amps[base | offsets[s]];
        sre[s] = a.real();
        sim[s] = a.imag();
      }
      for (std::size_t r = 0; r < sub_dim; ++r) {
        const T* rre = mre + r * sub_dim;
        const T* rim = mim + r * sub_dim;
        T acc_re{}, acc_im{};
#pragma omp simd reduction(+ : acc_re, acc_im)
        for (std::size_t s = 0; s < sub_dim; ++s) {
          acc_re += rre[s] * sre[s] - rim[s] * sim[s];
          acc_im += rre[s] * sim[s] + rim[s] * sre[s];
        }
        amps[base | offsets[r]] = complex_type(acc_re, acc_im);
      }
    };
    if (blocks >= kParallelBlocks) {
#pragma omp parallel
      {
        std::vector<T> scratch(2 * sub_dim);
#pragma omp for
        for (std::int64_t bb = 0; bb < blocks; ++bb) {
          block_kernel(bb, scratch.data(), scratch.data() + sub_dim);
        }
      }
    } else {
      if (run_scratch.size() < 2 * sub_dim) run_scratch.resize(2 * sub_dim);
      for (std::int64_t bb = 0; bb < blocks; ++bb) {
        block_kernel(bb, run_scratch.data(), run_scratch.data() + sub_dim);
      }
    }
  }

  static void apply_diagonal(const CompiledOp<T>& op, complex_type* amps, std::int64_t n) {
    const std::uint32_t k = op.num_targets;
    const std::int64_t count = n >> op.free_shift;  // firing amplitudes only
    const std::uint64_t* target_bits = op.target_bits.data();
    const complex_type* d = op.payload.data();
    auto amp_kernel = [&](std::int64_t ii) {
      const std::uint64_t i = expand_index(static_cast<std::uint64_t>(ii), op);
      std::uint64_t sub = 0;
      for (std::uint32_t t = 0; t < k; ++t) {
        if (i & target_bits[t]) sub |= std::uint64_t{1} << t;
      }
      amps[i] *= d[sub];
    };
    if (count >= kParallelAmps) {
#pragma omp parallel for
      for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
    } else {
      for (std::int64_t i = 0; i < count; ++i) amp_kernel(i);
    }
  }

  static void apply_phase(const CompiledOp<T>& op, complex_type* amps, std::int64_t n) {
    const complex_type phase = op.phase;
    if (n >= kParallelAmps) {
#pragma omp parallel for
      for (std::int64_t i = 0; i < n; ++i) amps[i] *= phase;
    } else {
      for (std::int64_t i = 0; i < n; ++i) amps[i] *= phase;
    }
  }
};

}  // namespace mpqls::qsim::exec
