// Replays a compiled Program<T> against a Statevector<T>. The kernels are
// the reason to compile: amplitude pairs are enumerated directly (no
// skipped-index branches on the uncontrolled hot path), gate matrices are
// already in the execution precision, and dense gather offsets come
// precomputed from the compiler. The executor is stateless — one program
// can be replayed from many threads onto distinct statevectors, which is
// how the solver service runs batched right-hand sides.
//
// The op bodies live in qsim/exec/kernels.hpp, shared with the pluggable
// execution backends (qsim/exec/backend/): this class IS the "reference"
// backend's scalar path, kept as a concrete type for callers that don't
// need dynamic backend dispatch.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "qsim/exec/kernels.hpp"
#include "qsim/exec/program.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim::exec {

template <typename T>
class Executor {
 public:
  using complex_type = std::complex<T>;

  /// Apply every op of `program` to `sv` in order. The program may be
  /// narrower than the register (mirrors Statevector::apply(Circuit)).
  /// Reentrant: scratch lives on this frame, so one Executor (and one
  /// Program) can serve concurrent solves on distinct statevectors.
  void run(const Program<T>& program, Statevector<T>& sv) const {
    expects((std::size_t{1} << program.num_qubits) <= sv.dim(),
            "exec: program wider than register");
    complex_type* amps = sv.data();
    const std::int64_t n = static_cast<std::int64_t>(sv.dim());
    std::vector<T> scratch;  // shared by the serial dense ops (re then im plane)
    for (const auto& op : program.ops) {
      kernels::apply_op(op, amps, n, scratch);
    }
  }
};

}  // namespace mpqls::qsim::exec
