// Trajectory-sampled noise channels for the statevector simulator:
// depolarizing (random Pauli with probability p after each gate, per
// touched qubit) and amplitude damping (exact Kraus trajectory with decay
// probability gamma). The paper explicitly targets fault-tolerant (LSQ)
// hardware because QSVT circuits are deep; the noise ablation bench uses
// this model to show *why*: the refinement loop cannot contract below the
// noise floor of a single solve.
#pragma once

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::qsim {

struct NoiseModel {
  double depolarizing_per_gate = 0.0;  ///< per touched qubit, per gate
  double damping_per_gate = 0.0;       ///< amplitude-damping gamma per touched qubit
};

/// Apply `circuit` with noise injected after every gate (one stochastic
/// trajectory). Averaging observables over trajectories converges to the
/// channel semantics.
template <typename T>
void apply_noisy(Statevector<T>& sv, const Circuit& circuit, const NoiseModel& model,
                 Xoshiro256& rng) {
  auto touched = [](const Gate& g, std::vector<std::uint32_t>& out) {
    out.clear();
    out.insert(out.end(), g.targets.begin(), g.targets.end());
    out.insert(out.end(), g.controls.begin(), g.controls.end());
    out.insert(out.end(), g.neg_controls.begin(), g.neg_controls.end());
  };
  std::vector<std::uint32_t> qubits;
  for (const auto& g : circuit.gates()) {
    sv.apply(g);
    if (model.depolarizing_per_gate <= 0.0 && model.damping_per_gate <= 0.0) continue;
    touched(g, qubits);
    for (auto q : qubits) {
      if (model.depolarizing_per_gate > 0.0 &&
          rng.uniform() < model.depolarizing_per_gate) {
        Gate pauli;
        const auto which = rng.uniform_index(3);
        pauli.kind = (which == 0) ? GateKind::kX : (which == 1) ? GateKind::kY : GateKind::kZ;
        pauli.targets = {q};
        sv.apply(pauli);
      }
      if (model.damping_per_gate > 0.0) {
        // Exact amplitude-damping trajectory: decay |1> -> |0> with
        // probability gamma * P(q = 1), else apply the no-jump Kraus
        // K0 = diag(1, sqrt(1 - gamma)) and renormalize.
        const double p1 = sv.probability(q, 1);
        const double p_jump = model.damping_per_gate * p1;
        Gate k;
        k.kind = GateKind::kUnitary;  // non-unitary payload; renormalized below
        k.targets = {q};
        linalg::Matrix<c64> m(2, 2);
        if (rng.uniform() < p_jump) {
          m(0, 1) = 1.0;  // collapse |1> -> |0>
        } else {
          m(0, 0) = 1.0;
          m(1, 1) = std::sqrt(1.0 - model.damping_per_gate);
        }
        k.matrix = std::make_shared<const linalg::Matrix<c64>>(std::move(m));
        sv.apply(k);
        sv.normalize();
      }
    }
  }
}

}  // namespace mpqls::qsim
