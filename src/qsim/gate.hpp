// Gate intermediate representation for the statevector simulator. A gate is
// a named operation (or a dense unitary payload) on target qubits, with
// optional positive controls (fire on |1>) and negative controls (fire on
// |0>). Negative controls make the QSVT projector reflections (controlled
// on ancillas being all-zero) first-class without X-sandwich rewriting.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"

namespace mpqls::qsim {

using c64 = std::complex<double>;

enum class GateKind : std::uint8_t {
  kX, kY, kZ, kH, kS, kSdg, kT, kTdg,
  kRx, kRy, kRz,
  kPhase,        ///< diag(1, e^{i theta}) on the target
  kGlobalPhase,  ///< e^{i theta} * I (no targets)
  kSwap,
  kUnitary,      ///< dense 2^k x 2^k payload on k targets
  kDiagonal,     ///< diagonal payload (one entry per target-subspace index)
};

/// Returns true for kinds parameterized by an angle.
constexpr bool is_parameterized(GateKind k) {
  return k == GateKind::kRx || k == GateKind::kRy || k == GateKind::kRz ||
         k == GateKind::kPhase || k == GateKind::kGlobalPhase;
}

struct Gate {
  GateKind kind = GateKind::kX;
  std::vector<std::uint32_t> targets;        ///< targets[0] = least significant
  std::vector<std::uint32_t> controls;       ///< fire when all are |1>
  std::vector<std::uint32_t> neg_controls;   ///< fire when all are |0>
  double param = 0.0;
  bool adjoint = false;  ///< apply the conjugate transpose (dagger) instead

  /// Dense payload for kUnitary (row-major 2^k x 2^k); shared so circuit
  /// copies stay cheap.
  std::shared_ptr<const linalg::Matrix<c64>> matrix;
  /// Diagonal payload for kDiagonal (size 2^k).
  std::shared_ptr<const std::vector<c64>> diagonal;
};

/// 2x2 matrix of a named single-qubit gate (adjoint-resolved).
linalg::Matrix<c64> gate_matrix_1q(GateKind kind, double param, bool adjoint);

}  // namespace mpqls::qsim
