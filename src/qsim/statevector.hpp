// Statevector simulator templated on the real precision T (float or
// double). The float instantiation is the "mixed-precision native" backend
// the repro calls for: it makes the QPU's arithmetic genuinely lower
// precision than the CPU's, in addition to the paper's algorithmic accuracy
// knob eps_l. Gate kernels are OpenMP-parallel over amplitude pairs.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/sampling.hpp"
#include "linalg/matrix.hpp"
#include "qsim/circuit.hpp"
#include "qsim/gate.hpp"

namespace mpqls::qsim {

template <typename T>
class Statevector {
 public:
  using complex_type = std::complex<T>;

  explicit Statevector(std::uint32_t num_qubits)
      : num_qubits_(num_qubits), amps_(std::size_t{1} << num_qubits) {
    expects(num_qubits <= 30, "statevector: too many qubits");
    amps_[0] = complex_type(1);
  }

  /// Initialize from classical amplitudes (normalized by the caller or via
  /// `normalize()`).
  static Statevector from_amplitudes(std::uint32_t num_qubits,
                                     const std::vector<std::complex<double>>& amps) {
    expects(amps.size() == (std::size_t{1} << num_qubits), "amplitude count mismatch");
    Statevector sv(num_qubits);
    for (std::size_t i = 0; i < amps.size(); ++i) {
      sv.amps_[i] = complex_type(static_cast<T>(amps[i].real()), static_cast<T>(amps[i].imag()));
    }
    return sv;
  }

  std::uint32_t num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }
  const std::vector<complex_type>& amplitudes() const { return amps_; }
  complex_type& operator[](std::size_t i) { return amps_[i]; }
  const complex_type& operator[](std::size_t i) const { return amps_[i]; }
  /// Raw amplitude storage — the contract the execution engine's compiled
  /// kernels (qsim/exec) run against.
  complex_type* data() { return amps_.data(); }
  const complex_type* data() const { return amps_.data(); }

  // The reductions below (norm, probability, probability_all_zero) run in
  // parallel for registers of >= 2^15 amplitudes. Parallel summation order
  // depends on the OpenMP thread count, so their results — and everything
  // downstream (postselect normalization, residuals) — are bitwise
  // reproducible only for a fixed thread count. Below the threshold (all
  // registers the test suite uses) the sums are serial and exact order is
  // preserved.
  double norm() const {
    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
    double s = 0.0;
#pragma omp parallel for reduction(+ : s) if (n >= (1 << 15))
    for (std::int64_t i = 0; i < n; ++i) {
      s += std::norm(std::complex<double>(amps_[i].real(), amps_[i].imag()));
    }
    return std::sqrt(s);
  }

  void normalize() {
    const double n = norm();
    expects(n > 0.0, "cannot normalize the zero vector");
    const T inv = static_cast<T>(1.0 / n);
    for (auto& a : amps_) a *= inv;
  }

  /// <this|other>
  std::complex<double> inner(const Statevector& other) const {
    expects(dim() == other.dim(), "inner: dimension mismatch");
    std::complex<double> s{};
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      s += std::conj(std::complex<double>(amps_[i].real(), amps_[i].imag())) *
           std::complex<double>(other.amps_[i].real(), other.amps_[i].imag());
    }
    return s;
  }

  // --- gate application -----------------------------------------------------

  void apply(const Gate& g) {
    std::uint64_t pos_mask = 0, neg_mask = 0;
    for (auto q : g.controls) pos_mask |= std::uint64_t{1} << q;
    for (auto q : g.neg_controls) neg_mask |= std::uint64_t{1} << q;
    switch (g.kind) {
      case GateKind::kGlobalPhase: {
        const std::complex<double> ph = std::exp(std::complex<double>(0, g.adjoint ? -g.param : g.param));
        const complex_type phc(static_cast<T>(ph.real()), static_cast<T>(ph.imag()));
        for (auto& a : amps_) a *= phc;
        return;
      }
      case GateKind::kSwap:
        apply_swap(g.targets[0], g.targets[1], pos_mask, neg_mask);
        return;
      case GateKind::kUnitary:
        apply_dense(g.targets, *g.matrix, g.adjoint, pos_mask, neg_mask);
        return;
      case GateKind::kDiagonal:
        apply_diagonal(g.targets, *g.diagonal, g.adjoint, pos_mask, neg_mask);
        return;
      default: {
        const auto m = gate_matrix_1q(g.kind, g.param, g.adjoint);
        apply_1q(g.targets[0], m, pos_mask, neg_mask);
        return;
      }
    }
  }

  void apply(const Circuit& circuit) {
    expects((std::size_t{1} << circuit.num_qubits()) <= dim(), "circuit wider than register");
    for (const auto& g : circuit.gates()) apply(g);
  }

  // --- measurement ----------------------------------------------------------

  /// Probability that qubit q measures `value`.
  double probability(std::uint32_t q, int value) const {
    const std::uint64_t bit = std::uint64_t{1} << q;
    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
    double p = 0.0;
#pragma omp parallel for reduction(+ : p) if (n >= (1 << 15))
    for (std::int64_t ii = 0; ii < n; ++ii) {
      const std::uint64_t i = static_cast<std::uint64_t>(ii);
      if (((i & bit) != 0) == (value != 0)) {
        p += std::norm(std::complex<double>(amps_[i].real(), amps_[i].imag()));
      }
    }
    return p;
  }

  /// Probability that all qubits in `qubits` measure 0.
  double probability_all_zero(const std::vector<std::uint32_t>& qubits) const {
    std::uint64_t mask = 0;
    for (auto q : qubits) mask |= std::uint64_t{1} << q;
    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
    double p = 0.0;
#pragma omp parallel for reduction(+ : p) if (n >= (1 << 15))
    for (std::int64_t ii = 0; ii < n; ++ii) {
      const std::uint64_t i = static_cast<std::uint64_t>(ii);
      if ((i & mask) == 0) {
        p += std::norm(std::complex<double>(amps_[i].real(), amps_[i].imag()));
      }
    }
    return p;
  }

  /// Project onto the subspace where all `qubits` are 0 and renormalize.
  /// Returns the pre-projection probability (for success accounting).
  double postselect_zero(const std::vector<std::uint32_t>& qubits) {
    std::uint64_t mask = 0;
    for (auto q : qubits) mask |= std::uint64_t{1} << q;
    const double p = probability_all_zero(qubits);
    expects(p > 0.0, "postselect_zero: zero-probability branch");
    const T inv = static_cast<T>(1.0 / std::sqrt(p));
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      if ((i & mask) == 0) {
        amps_[i] *= inv;
      } else {
        amps_[i] = complex_type{};
      }
    }
    return p;
  }

  /// Full measurement distribution |amp_i|^2.
  std::vector<double> probabilities() const {
    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
    std::vector<double> p(amps_.size());
#pragma omp parallel for if (n >= (1 << 15))
    for (std::int64_t i = 0; i < n; ++i) {
      p[i] = std::norm(std::complex<double>(amps_[i].real(), amps_[i].imag()));
    }
    return p;
  }

  /// Reusable readout handle: one O(2^n) cumulative-distribution pass, any
  /// number of O(log 2^n) draws. Callers that sample repeatedly from an
  /// unchanged state (shot batches between gates) should hold onto this
  /// instead of calling `sample` per batch.
  CdfSampler make_sampler() const {
    std::vector<double> cdf(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      acc += std::norm(std::complex<double>(amps_[i].real(), amps_[i].imag()));
      cdf[i] = acc;
    }
    return CdfSampler(std::move(cdf));
  }

  /// Sample one computational-basis outcome.
  std::size_t sample(Xoshiro256& rng) const { return sample(rng, 1)[0]; }

  /// Sample `shots` outcomes through a freshly built sampler handle. The
  /// single-shot overload routes through here, so multi-shot draws are
  /// identical to sequential single draws by construction.
  std::vector<std::size_t> sample(Xoshiro256& rng, std::uint64_t shots) const {
    return make_sampler().draw(rng, shots);
  }

 private:
  static bool controls_pass(std::uint64_t idx, std::uint64_t pos_mask, std::uint64_t neg_mask) {
    return (idx & pos_mask) == pos_mask && (idx & neg_mask) == 0;
  }

  void apply_1q(std::uint32_t q, const linalg::Matrix<c64>& m, std::uint64_t pos_mask,
                std::uint64_t neg_mask) {
    const std::uint64_t bit = std::uint64_t{1} << q;
    const complex_type m00(static_cast<T>(m(0, 0).real()), static_cast<T>(m(0, 0).imag()));
    const complex_type m01(static_cast<T>(m(0, 1).real()), static_cast<T>(m(0, 1).imag()));
    const complex_type m10(static_cast<T>(m(1, 0).real()), static_cast<T>(m(1, 0).imag()));
    const complex_type m11(static_cast<T>(m(1, 1).real()), static_cast<T>(m(1, 1).imag()));
    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for if (n >= (1 << 14))
    for (std::int64_t ii = 0; ii < n; ++ii) {
      const std::uint64_t i = static_cast<std::uint64_t>(ii);
      if ((i & bit) != 0) continue;
      if (!controls_pass(i, pos_mask, neg_mask)) continue;
      const std::uint64_t j = i | bit;
      const complex_type a0 = amps_[i];
      const complex_type a1 = amps_[j];
      amps_[i] = m00 * a0 + m01 * a1;
      amps_[j] = m10 * a0 + m11 * a1;
    }
  }

  void apply_swap(std::uint32_t q1, std::uint32_t q2, std::uint64_t pos_mask,
                  std::uint64_t neg_mask) {
    const std::uint64_t b1 = std::uint64_t{1} << q1;
    const std::uint64_t b2 = std::uint64_t{1} << q2;
    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for if (n >= (1 << 14))
    for (std::int64_t ii = 0; ii < n; ++ii) {
      const std::uint64_t i = static_cast<std::uint64_t>(ii);
      // Representative: q1 = 1, q2 = 0.
      if ((i & b1) == 0 || (i & b2) != 0) continue;
      if (!controls_pass(i, pos_mask, neg_mask)) continue;
      const std::uint64_t j = (i & ~b1) | b2;
      std::swap(amps_[i], amps_[j]);
    }
  }

  void apply_diagonal(const std::vector<std::uint32_t>& targets, const std::vector<c64>& diag,
                      bool adjoint, std::uint64_t pos_mask, std::uint64_t neg_mask) {
    const std::size_t k = targets.size();
    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel for if (n >= (1 << 14))
    for (std::int64_t ii = 0; ii < n; ++ii) {
      const std::uint64_t i = static_cast<std::uint64_t>(ii);
      if (!controls_pass(i, pos_mask, neg_mask)) continue;
      std::uint64_t sub = 0;
      for (std::size_t t = 0; t < k; ++t) {
        if (i & (std::uint64_t{1} << targets[t])) sub |= std::uint64_t{1} << t;
      }
      c64 d = diag[sub];
      if (adjoint) d = std::conj(d);
      amps_[i] *= complex_type(static_cast<T>(d.real()), static_cast<T>(d.imag()));
    }
  }

  void apply_dense(const std::vector<std::uint32_t>& targets, const linalg::Matrix<c64>& m,
                   bool adjoint, std::uint64_t pos_mask, std::uint64_t neg_mask) {
    const std::size_t k = targets.size();
    const std::size_t sub_dim = std::size_t{1} << k;
    std::uint64_t target_mask = 0;
    for (auto q : targets) target_mask |= std::uint64_t{1} << q;

    const std::int64_t n = static_cast<std::int64_t>(amps_.size());
#pragma omp parallel
    {
      std::vector<complex_type> scratch(sub_dim);
      std::vector<std::uint64_t> idx(sub_dim);
#pragma omp for
      for (std::int64_t bb = 0; bb < n; ++bb) {
        const std::uint64_t base = static_cast<std::uint64_t>(bb);
        if ((base & target_mask) != 0) continue;  // representative: targets all 0
        if (!controls_pass(base, pos_mask, neg_mask)) continue;
        for (std::size_t s = 0; s < sub_dim; ++s) {
          std::uint64_t off = 0;
          for (std::size_t t = 0; t < k; ++t) {
            if (s & (std::size_t{1} << t)) off |= std::uint64_t{1} << targets[t];
          }
          idx[s] = base | off;
          scratch[s] = amps_[idx[s]];
        }
        for (std::size_t r = 0; r < sub_dim; ++r) {
          std::complex<double> acc{};
          for (std::size_t s = 0; s < sub_dim; ++s) {
            const c64 mrs = adjoint ? std::conj(m(s, r)) : m(r, s);
            acc += mrs * std::complex<double>(scratch[s].real(), scratch[s].imag());
          }
          amps_[idx[r]] = complex_type(static_cast<T>(acc.real()), static_cast<T>(acc.imag()));
        }
      }
    }
  }

  std::uint32_t num_qubits_;
  std::vector<complex_type> amps_;
};

/// Dense unitary of a circuit, built column-by-column (tests and small
/// block-encoding materializations).
inline linalg::Matrix<c64> circuit_unitary(const Circuit& circuit) {
  const std::size_t dim = std::size_t{1} << circuit.num_qubits();
  linalg::Matrix<c64> U(dim, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    Statevector<double> sv(circuit.num_qubits());
    sv[0] = 0.0;
    sv[j] = 1.0;
    sv.apply(circuit);
    for (std::size_t i = 0; i < dim; ++i) {
      U(i, j) = std::complex<double>(sv[i].real(), sv[i].imag());
    }
  }
  return U;
}

}  // namespace mpqls::qsim
