// Circuit IR: an ordered gate list on a fixed-width qubit register, with
// the structural transformations the QSVT construction needs (dagger,
// adding controls to a whole subcircuit, appending under a qubit mapping)
// and resource queries (gate counts, multi-controlled-X histogram, depth).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qsim/gate.hpp"

namespace mpqls::qsim {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(std::uint32_t num_qubits) : num_qubits_(num_qubits) {}

  std::uint32_t num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  // --- single-qubit gates -------------------------------------------------
  Circuit& x(std::uint32_t q) { return named(GateKind::kX, q); }
  Circuit& y(std::uint32_t q) { return named(GateKind::kY, q); }
  Circuit& z(std::uint32_t q) { return named(GateKind::kZ, q); }
  Circuit& h(std::uint32_t q) { return named(GateKind::kH, q); }
  Circuit& s(std::uint32_t q) { return named(GateKind::kS, q); }
  Circuit& sdg(std::uint32_t q) { return named(GateKind::kSdg, q); }
  Circuit& t(std::uint32_t q) { return named(GateKind::kT, q); }
  Circuit& tdg(std::uint32_t q) { return named(GateKind::kTdg, q); }
  Circuit& rx(std::uint32_t q, double theta) { return rotation(GateKind::kRx, q, theta); }
  Circuit& ry(std::uint32_t q, double theta) { return rotation(GateKind::kRy, q, theta); }
  Circuit& rz(std::uint32_t q, double theta) { return rotation(GateKind::kRz, q, theta); }
  Circuit& phase(std::uint32_t q, double theta) { return rotation(GateKind::kPhase, q, theta); }
  Circuit& global_phase(double theta);

  // --- controlled / multi-qubit gates --------------------------------------
  Circuit& cx(std::uint32_t control, std::uint32_t target);
  Circuit& cz(std::uint32_t control, std::uint32_t target);
  Circuit& ccx(std::uint32_t c1, std::uint32_t c2, std::uint32_t target);
  Circuit& mcx(std::vector<std::uint32_t> controls, std::uint32_t target);
  Circuit& mcz(std::vector<std::uint32_t> controls, std::uint32_t target);
  Circuit& mcphase(std::vector<std::uint32_t> controls, std::uint32_t target, double theta);
  Circuit& cry(std::uint32_t control, std::uint32_t target, double theta);
  Circuit& crz(std::uint32_t control, std::uint32_t target, double theta);
  Circuit& swap(std::uint32_t q1, std::uint32_t q2);

  /// Dense unitary on `targets` (targets[0] = least significant bit of the
  /// payload index). The matrix must be 2^k x 2^k.
  Circuit& unitary(std::vector<std::uint32_t> targets, linalg::Matrix<c64> matrix);

  /// Diagonal gate on `targets` (entries indexed by the targets' bits).
  Circuit& diagonal_gate(std::vector<std::uint32_t> targets, std::vector<c64> entries);

  /// Append a raw gate (validated against the register width).
  Circuit& push(Gate g);

  // --- structural transforms ----------------------------------------------
  /// Reversed circuit of daggered gates: (this)^dagger.
  Circuit dagger() const;

  /// Same circuit with extra (positive / negative) controls attached to
  /// every gate. A controlled global phase becomes a phase gate on the
  /// (first) control, per the usual identity.
  Circuit controlled(const std::vector<std::uint32_t>& pos_controls,
                     const std::vector<std::uint32_t>& neg_controls = {}) const;

  /// Append `other`, mapping its qubit i to `qubit_map[i]`.
  Circuit& append(const Circuit& other, const std::vector<std::uint32_t>& qubit_map);
  /// Append `other` on identical qubit indices.
  Circuit& append(const Circuit& other);

  // --- resource queries -----------------------------------------------------
  struct Counts {
    std::map<GateKind, std::uint64_t> by_kind;
    /// histogram: #controls (pos+neg) -> count, for X-type gates only
    std::map<std::uint32_t, std::uint64_t> mcx_by_controls;
    std::uint64_t total = 0;
    std::uint64_t rotations = 0;       ///< parameterized gates
    std::uint64_t two_qubit_plus = 0;  ///< gates touching >= 2 qubits (incl. controls)
  };
  Counts counts() const;

  /// Greedy qubit-availability depth (gates on disjoint qubits share a layer).
  std::uint64_t depth() const;

 private:
  Circuit& named(GateKind k, std::uint32_t q);
  Circuit& rotation(GateKind k, std::uint32_t q, double theta);
  void validate(const Gate& g) const;

  std::uint32_t num_qubits_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace mpqls::qsim
