#include "qsim/synth/ucr.hpp"

#include <bit>

#include "common/contracts.hpp"

namespace mpqls::qsim {

namespace {

std::uint64_t gray(std::uint64_t i) { return i ^ (i >> 1); }

// Solve for the rotation angles theta of the Gray-walk circuit such that
// control value x receives the net angle angles[x]. The walk's CNOT
// conjugations give angles = S theta with S_{x,i} = (-1)^{popcount(x &
// gray(i))}; S S^T = 2^k I, so theta = S^T angles / 2^k.
std::vector<double> walk_angles(const std::vector<double>& angles) {
  const std::size_t m = angles.size();
  std::vector<double> theta(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double s = 0.0;
    const std::uint64_t gi = gray(i);
    for (std::size_t x = 0; x < m; ++x) {
      const int sign = (std::popcount(static_cast<std::uint64_t>(x) & gi) & 1) ? -1 : 1;
      s += sign * angles[x];
    }
    theta[i] = s / static_cast<double>(m);
  }
  return theta;
}

enum class Axis { kY, kZ };

void append_ucr(Circuit& circuit, const std::vector<std::uint32_t>& controls,
                std::uint32_t target, const std::vector<double>& angles, Axis axis) {
  const std::size_t k = controls.size();
  expects(angles.size() == (std::size_t{1} << k), "ucr: angle count must be 2^k");
  auto rotate = [&](double theta) {
    if (axis == Axis::kY) {
      circuit.ry(target, theta);
    } else {
      circuit.rz(target, theta);
    }
  };
  if (k == 0) {
    rotate(angles[0]);
    return;
  }
  const std::vector<double> theta = walk_angles(angles);
  const std::size_t m = angles.size();
  for (std::size_t i = 0; i < m; ++i) {
    rotate(theta[i]);
    // CNOT on the bit that flips between gray(i) and gray(i+1 mod m); for
    // the wrap-around step this is the top bit, closing the walk.
    const std::uint64_t change = gray(i) ^ gray((i + 1) % m);
    const int bit = std::countr_zero(change);
    circuit.cx(controls[static_cast<std::size_t>(bit)], target);
  }
}

}  // namespace

void append_ucry(Circuit& circuit, const std::vector<std::uint32_t>& controls,
                 std::uint32_t target, const std::vector<double>& angles) {
  append_ucr(circuit, controls, target, angles, Axis::kY);
}

void append_ucrz(Circuit& circuit, const std::vector<std::uint32_t>& controls,
                 std::uint32_t target, const std::vector<double>& angles) {
  append_ucr(circuit, controls, target, angles, Axis::kZ);
}

std::size_t append_ucry_pruned(Circuit& circuit, const std::vector<std::uint32_t>& controls,
                               std::uint32_t target, const std::vector<double>& angles,
                               double cutoff) {
  const std::size_t k = controls.size();
  expects(angles.size() == (std::size_t{1} << k), "ucr: angle count must be 2^k");
  if (k == 0) {
    if (std::abs(angles[0]) > cutoff) {
      circuit.ry(target, angles[0]);
      return 1;
    }
    return 0;
  }
  const std::vector<double> theta = walk_angles(angles);
  const std::size_t m = angles.size();
  std::uint64_t parity = 0;  // pending CNOT mask, flushed before each kept RY
  std::size_t kept = 0;
  auto flush = [&] {
    for (std::size_t b = 0; b < k; ++b) {
      if (parity & (std::uint64_t{1} << b)) circuit.cx(controls[b], target);
    }
    parity = 0;
  };
  for (std::size_t i = 0; i < m; ++i) {
    if (std::abs(theta[i]) > cutoff) {
      flush();
      circuit.ry(target, theta[i]);
      ++kept;
    }
    const std::uint64_t change = gray(i) ^ gray((i + 1) % m);
    parity ^= change;
  }
  flush();  // close the walk so the net CNOT parity is preserved
  return kept;
}

}  // namespace mpqls::qsim
