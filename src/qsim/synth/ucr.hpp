// Uniformly controlled single-qubit rotations (Mottonen et al. 2004,
// Shende-Bullock-Markov 2006): for control register value x, apply
// R(angles[x]) to the target. Compiled to 2^k plain rotations interleaved
// with CNOTs along a Gray-code walk — the core primitive behind both the
// Kerenidis-Prakash state-preparation tree [23] and FABLE [10].
#pragma once

#include <cstdint>
#include <vector>

#include "qsim/circuit.hpp"

namespace mpqls::qsim {

/// Append a uniformly controlled RY to `circuit`. `angles` has size
/// 2^controls.size(), indexed by the control bits (controls[b] = qubit
/// carrying bit b of the index x).
void append_ucry(Circuit& circuit, const std::vector<std::uint32_t>& controls,
                 std::uint32_t target, const std::vector<double>& angles);

/// Append a uniformly controlled RZ (same indexing).
void append_ucrz(Circuit& circuit, const std::vector<std::uint32_t>& controls,
                 std::uint32_t target, const std::vector<double>& angles);

/// FABLE-style compressed UCRY: rotations whose Gray-walk angle falls
/// below `cutoff` are dropped and the CNOTs around them are merged (the
/// walk tracks an XOR parity mask and only emits the difference). Returns
/// the number of rotations kept. With cutoff = 0 this is an exact,
/// CNOT-optimal re-expression of append_ucry.
std::size_t append_ucry_pruned(Circuit& circuit, const std::vector<std::uint32_t>& controls,
                               std::uint32_t target, const std::vector<double>& angles,
                               double cutoff);

}  // namespace mpqls::qsim
