#include "qsim/synth/qft.hpp"

#include <cmath>

namespace mpqls::qsim {

namespace {

Circuit build_qft(std::uint32_t width, const std::vector<std::uint32_t>& qubits) {
  Circuit qft(width);
  const std::size_t m = qubits.size();
  // Standard ladder, processing from the most significant qubit down.
  for (std::size_t i = m; i-- > 0;) {
    qft.h(qubits[i]);
    for (std::size_t j = i; j-- > 0;) {
      const double theta = M_PI / static_cast<double>(std::size_t{1} << (i - j));
      qft.push([&] {
        Gate g;
        g.kind = GateKind::kPhase;
        g.targets = {qubits[j]};
        g.controls = {qubits[i]};
        g.param = theta;
        return g;
      }());
    }
  }
  // Bit reversal.
  for (std::size_t i = 0; i < m / 2; ++i) qft.swap(qubits[i], qubits[m - 1 - i]);
  return qft;
}

std::uint32_t max_qubit(const std::vector<std::uint32_t>& qubits) {
  std::uint32_t mx = 0;
  for (auto q : qubits) mx = std::max(mx, q);
  return mx + 1;
}

}  // namespace

void append_qft(Circuit& circuit, const std::vector<std::uint32_t>& qubits) {
  circuit.append(build_qft(std::max(circuit.num_qubits(), max_qubit(qubits)), qubits));
}

void append_iqft(Circuit& circuit, const std::vector<std::uint32_t>& qubits) {
  circuit.append(
      build_qft(std::max(circuit.num_qubits(), max_qubit(qubits)), qubits).dagger());
}

}  // namespace mpqls::qsim
