#include "qsim/synth/amplitude_estimation.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/contracts.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/statevector.hpp"
#include "qsim/synth/qft.hpp"

namespace mpqls::qsim {

namespace {

// Grover iterate G = V S_0 V^dagger S_good (global signs folded in):
// S_good flips the sign of the marked ("good") subspace — here the
// subspace where all `marked_zero` qubits are |0> — and S_0 reflects about
// the all-zero state of V's register.
Circuit build_grover_iterate(const Circuit& v, const std::vector<std::uint32_t>& marked_zero) {
  const std::uint32_t width = v.num_qubits();
  Circuit g(width);

  // S_good: -1 on (all marked qubits zero). Diagonal {-1, 1} on the first
  // marked qubit, negatively controlled on the rest.
  {
    expects(!marked_zero.empty(), "amplitude estimation: no marked qubits");
    Gate d;
    d.kind = GateKind::kDiagonal;
    d.targets = {marked_zero.front()};
    d.neg_controls.assign(marked_zero.begin() + 1, marked_zero.end());
    d.diagonal = std::make_shared<const std::vector<c64>>(std::vector<c64>{-1.0, 1.0});
    g.push(d);
  }
  g.append(v.dagger());
  // S_0: -1 on |0...0> of the whole register.
  {
    Gate d;
    d.kind = GateKind::kDiagonal;
    d.targets = {0};
    std::vector<std::uint32_t> rest;
    for (std::uint32_t q = 1; q < width; ++q) rest.push_back(q);
    d.neg_controls = std::move(rest);
    d.diagonal = std::make_shared<const std::vector<c64>>(std::vector<c64>{-1.0, 1.0});
    g.push(d);
  }
  g.append(v);
  // Global -1 making G = -V S_0 V^dagger S_good, whose eigenphases are
  // +-2 theta with a = sin^2(theta).
  g.global_phase(M_PI);
  return g;
}

}  // namespace

AmplitudeEstimationResult estimate_amplitude(const Circuit& v,
                                             const std::vector<std::uint32_t>& marked_zero,
                                             std::uint32_t clock_qubits,
                                             std::uint64_t seed, std::uint64_t shots) {
  expects(clock_qubits >= 2 && clock_qubits <= 12, "amplitude estimation: clock in [2,12]");
  const std::uint32_t n = v.num_qubits();
  const std::uint32_t width = n + clock_qubits;

  AmplitudeEstimationResult out;
  out.clock_qubits = clock_qubits;

  const exec::Executor<double> executor;

  // Reference value from the raw state (diagnostics only).
  {
    Statevector<double> ref(n);
    executor.run(exec::compile<double>(v), ref);
    out.exact = ref.probability_all_zero(marked_zero);
  }

  // QPE over the Grover iterate.
  const Circuit grover = build_grover_iterate(v, marked_zero);
  Circuit qpe(width);
  std::vector<std::uint32_t> clock(clock_qubits);
  for (std::uint32_t k = 0; k < clock_qubits; ++k) clock[k] = n + k;
  qpe.append(v);
  for (auto c : clock) qpe.h(c);
  for (std::uint32_t k = 0; k < clock_qubits; ++k) {
    const std::size_t reps = std::size_t{1} << k;
    Circuit controlled = grover.controlled({clock[k]});
    for (std::size_t r = 0; r < reps; ++r) qpe.append(controlled);
    out.grover_calls += reps;
  }
  append_iqft(qpe, clock);

  // The QPE circuit repeats the controlled Grover iterate 2^m - 1 times;
  // compiling fuses each repetition once and replays the flat program.
  Statevector<double> sv(width);
  executor.run(exec::compile<double>(qpe), sv);

  // Sample the clock register; convert the modal outcome y to
  // a = sin^2(pi y / 2^m).
  Xoshiro256 rng(seed);
  std::map<std::uint64_t, std::uint64_t> histogram;
  const std::size_t bins = std::size_t{1} << clock_qubits;
  for (const std::size_t outcome : sv.sample(rng, shots)) {
    ++histogram[(outcome >> n) % bins];
  }
  std::uint64_t mode = 0, mode_count = 0;
  for (const auto& [y, count] : histogram) {
    if (count > mode_count) {
      mode = y;
      mode_count = count;
    }
  }
  const double theta = M_PI * static_cast<double>(mode) / static_cast<double>(bins);
  out.estimate = std::sin(theta) * std::sin(theta);
  return out;
}

}  // namespace mpqls::qsim
