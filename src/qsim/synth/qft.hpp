// Quantum Fourier transform circuit (used by the HHL baseline's phase
// estimation). Convention: QFT|j> = 2^{-m/2} sum_k e^{2 pi i jk / 2^m} |k>,
// with qubit 0 the least significant bit of j on both sides.
#pragma once

#include <cstdint>
#include <vector>

#include "qsim/circuit.hpp"

namespace mpqls::qsim {

/// Append a QFT on `qubits` (qubits[0] = least significant).
void append_qft(Circuit& circuit, const std::vector<std::uint32_t>& qubits);

/// Append the inverse QFT on `qubits`.
void append_iqft(Circuit& circuit, const std::vector<std::uint32_t>& qubits);

}  // namespace mpqls::qsim
