// Canonical (QPE-based) quantum amplitude estimation (Brassard et al.
// 2002). Given a preparation circuit V with success amplitude
// a = ||Pi V |0>||^2 on a marked subspace, phase estimation over the
// Grover iterate G = -V S_0 V^dagger S_chi estimates a to additive error
// O(1/2^m) with 2^m - 1 applications of G — the quadratically better
// alternative to the O(1/eps^2) direct-sampling term in the paper's
// Table I cost model (future-work territory for the paper; a working
// implementation here).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"

namespace mpqls::qsim {

struct AmplitudeEstimationResult {
  double estimate = 0.0;        ///< estimated probability a
  double exact = 0.0;           ///< true a (from the statevector; for reference)
  std::size_t grover_calls = 0; ///< applications of the Grover iterate
  std::uint32_t clock_qubits = 0;
};

/// Estimate a = P(all `marked_zero` qubits are 0) for the state V|0> using
/// `clock_qubits` bits of phase estimation. `state_qubits` is the width of
/// V's register. The measurement is sampled (`shots` draws of the clock
/// register, majority outcome), seeded for reproducibility.
AmplitudeEstimationResult estimate_amplitude(const Circuit& v,
                                             const std::vector<std::uint32_t>& marked_zero,
                                             std::uint32_t clock_qubits,
                                             std::uint64_t seed = 7,
                                             std::uint64_t shots = 64);

}  // namespace mpqls::qsim
