#include "qsim/circuit.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace mpqls::qsim {

linalg::Matrix<c64> gate_matrix_1q(GateKind kind, double param, bool adjoint) {
  using M = linalg::Matrix<c64>;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  const c64 i1(0.0, 1.0);
  // For parameterized gates the adjoint is the negated angle; for S/T it is
  // the dg partner; the rest are self-adjoint.
  const double theta = adjoint ? -param : param;
  switch (kind) {
    case GateKind::kX: return M{{0, 1}, {1, 0}};
    case GateKind::kY: return M{{0, -i1}, {i1, 0}};
    case GateKind::kZ: return M{{1, 0}, {0, -1}};
    case GateKind::kH: return M{{inv_sqrt2, inv_sqrt2}, {inv_sqrt2, -inv_sqrt2}};
    case GateKind::kS: return adjoint ? M{{1, 0}, {0, -i1}} : M{{1, 0}, {0, i1}};
    case GateKind::kSdg: return adjoint ? M{{1, 0}, {0, i1}} : M{{1, 0}, {0, -i1}};
    case GateKind::kT:
      return M{{1, 0}, {0, std::exp(i1 * (adjoint ? -M_PI / 4 : M_PI / 4))}};
    case GateKind::kTdg:
      return M{{1, 0}, {0, std::exp(i1 * (adjoint ? M_PI / 4 : -M_PI / 4))}};
    case GateKind::kRx: {
      const double c = std::cos(theta / 2), s = std::sin(theta / 2);
      return M{{c, -i1 * s}, {-i1 * s, c}};
    }
    case GateKind::kRy: {
      const double c = std::cos(theta / 2), s = std::sin(theta / 2);
      return M{{c, -s}, {s, c}};
    }
    case GateKind::kRz: {
      return M{{std::exp(-i1 * (theta / 2)), 0}, {0, std::exp(i1 * (theta / 2))}};
    }
    case GateKind::kPhase:
      return M{{1, 0}, {0, std::exp(i1 * theta)}};
    default:
      break;
  }
  throw contract_violation("gate_matrix_1q: not a single-qubit named gate");
}

Circuit& Circuit::named(GateKind k, std::uint32_t q) {
  Gate g;
  g.kind = k;
  g.targets = {q};
  return push(std::move(g));
}

Circuit& Circuit::rotation(GateKind k, std::uint32_t q, double theta) {
  Gate g;
  g.kind = k;
  g.targets = {q};
  g.param = theta;
  return push(std::move(g));
}

Circuit& Circuit::global_phase(double theta) {
  Gate g;
  g.kind = GateKind::kGlobalPhase;
  g.param = theta;
  return push(std::move(g));
}

Circuit& Circuit::cx(std::uint32_t control, std::uint32_t target) {
  Gate g;
  g.kind = GateKind::kX;
  g.targets = {target};
  g.controls = {control};
  return push(std::move(g));
}

Circuit& Circuit::cz(std::uint32_t control, std::uint32_t target) {
  Gate g;
  g.kind = GateKind::kZ;
  g.targets = {target};
  g.controls = {control};
  return push(std::move(g));
}

Circuit& Circuit::ccx(std::uint32_t c1, std::uint32_t c2, std::uint32_t target) {
  return mcx({c1, c2}, target);
}

Circuit& Circuit::mcx(std::vector<std::uint32_t> controls, std::uint32_t target) {
  Gate g;
  g.kind = GateKind::kX;
  g.targets = {target};
  g.controls = std::move(controls);
  return push(std::move(g));
}

Circuit& Circuit::mcz(std::vector<std::uint32_t> controls, std::uint32_t target) {
  Gate g;
  g.kind = GateKind::kZ;
  g.targets = {target};
  g.controls = std::move(controls);
  return push(std::move(g));
}

Circuit& Circuit::mcphase(std::vector<std::uint32_t> controls, std::uint32_t target,
                          double theta) {
  Gate g;
  g.kind = GateKind::kPhase;
  g.targets = {target};
  g.controls = std::move(controls);
  g.param = theta;
  return push(std::move(g));
}

Circuit& Circuit::cry(std::uint32_t control, std::uint32_t target, double theta) {
  Gate g;
  g.kind = GateKind::kRy;
  g.targets = {target};
  g.controls = {control};
  g.param = theta;
  return push(std::move(g));
}

Circuit& Circuit::crz(std::uint32_t control, std::uint32_t target, double theta) {
  Gate g;
  g.kind = GateKind::kRz;
  g.targets = {target};
  g.controls = {control};
  g.param = theta;
  return push(std::move(g));
}

Circuit& Circuit::swap(std::uint32_t q1, std::uint32_t q2) {
  Gate g;
  g.kind = GateKind::kSwap;
  g.targets = {q1, q2};
  return push(std::move(g));
}

Circuit& Circuit::unitary(std::vector<std::uint32_t> targets, linalg::Matrix<c64> matrix) {
  const std::size_t dim = std::size_t{1} << targets.size();
  expects(matrix.rows() == dim && matrix.cols() == dim, "unitary: payload dimension mismatch");
  Gate g;
  g.kind = GateKind::kUnitary;
  g.targets = std::move(targets);
  g.matrix = std::make_shared<const linalg::Matrix<c64>>(std::move(matrix));
  return push(std::move(g));
}

Circuit& Circuit::diagonal_gate(std::vector<std::uint32_t> targets, std::vector<c64> entries) {
  const std::size_t dim = std::size_t{1} << targets.size();
  expects(entries.size() == dim, "diagonal_gate: payload dimension mismatch");
  Gate g;
  g.kind = GateKind::kDiagonal;
  g.targets = std::move(targets);
  g.diagonal = std::make_shared<const std::vector<c64>>(std::move(entries));
  return push(std::move(g));
}

void Circuit::validate(const Gate& g) const {
  auto in_range = [this](std::uint32_t q) { return q < num_qubits_; };
  for (auto q : g.targets) expects(in_range(q), "gate target out of range");
  for (auto q : g.controls) expects(in_range(q), "gate control out of range");
  for (auto q : g.neg_controls) expects(in_range(q), "gate neg-control out of range");
  // Targets and controls must be pairwise distinct qubits.
  std::vector<std::uint32_t> all = g.targets;
  all.insert(all.end(), g.controls.begin(), g.controls.end());
  all.insert(all.end(), g.neg_controls.begin(), g.neg_controls.end());
  std::sort(all.begin(), all.end());
  expects(std::adjacent_find(all.begin(), all.end()) == all.end(),
          "gate qubits must be distinct");
}

Circuit& Circuit::push(Gate g) {
  validate(g);
  gates_.push_back(std::move(g));
  return *this;
}

Circuit Circuit::dagger() const {
  Circuit out(num_qubits_);
  out.gates_.reserve(gates_.size());
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    Gate g = *it;
    g.adjoint = !g.adjoint;
    // Self-adjoint kinds need no flag (keeps counts clean): X,Y,Z,H,Swap.
    switch (g.kind) {
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kSwap:
        g.adjoint = false;
        break;
      default:
        break;
    }
    out.gates_.push_back(std::move(g));
  }
  return out;
}

Circuit Circuit::controlled(const std::vector<std::uint32_t>& pos_controls,
                            const std::vector<std::uint32_t>& neg_controls) const {
  // Widen the register so controls outside the subcircuit are legal.
  std::uint32_t width = num_qubits_;
  for (auto q : pos_controls) width = std::max(width, q + 1);
  for (auto q : neg_controls) width = std::max(width, q + 1);
  Circuit out(width);
  out.gates_.reserve(gates_.size());
  for (Gate g : gates_) {
    if (g.kind == GateKind::kGlobalPhase) {
      // A controlled global phase is a (multi-)controlled phase on one of
      // the control qubits.
      expects(!pos_controls.empty() || !neg_controls.empty(),
              "controlled() requires at least one control");
      Gate p;
      p.kind = GateKind::kPhase;
      p.param = g.adjoint ? -g.param : g.param;
      p.adjoint = false;
      if (!pos_controls.empty()) {
        p.targets = {pos_controls.front()};
        p.controls.assign(pos_controls.begin() + 1, pos_controls.end());
        p.neg_controls = neg_controls;
      } else {
        // Phase fires when the (negated) control is 0: encode as neg
        // controls on all but use an X-sandwich-free representation:
        // diag(e^{i t}, 1) = global e^{i t} then phase(-t); simplest is a
        // Diagonal gate on the first neg control.
        Gate d;
        d.kind = GateKind::kDiagonal;
        d.targets = {neg_controls.front()};
        d.neg_controls.assign(neg_controls.begin() + 1, neg_controls.end());
        const c64 ph = std::exp(c64(0, g.adjoint ? -g.param : g.param));
        d.diagonal = std::make_shared<const std::vector<c64>>(std::vector<c64>{ph, 1.0});
        out.validate(d);
        out.gates_.push_back(std::move(d));
        continue;
      }
      out.validate(p);
      out.gates_.push_back(std::move(p));
      continue;
    }
    g.controls.insert(g.controls.end(), pos_controls.begin(), pos_controls.end());
    g.neg_controls.insert(g.neg_controls.end(), neg_controls.begin(), neg_controls.end());
    out.validate(g);
    out.gates_.push_back(std::move(g));
  }
  return out;
}

Circuit& Circuit::append(const Circuit& other, const std::vector<std::uint32_t>& qubit_map) {
  expects(qubit_map.size() >= other.num_qubits(), "append: qubit map too small");
  for (Gate g : other.gates_) {
    for (auto& q : g.targets) q = qubit_map[q];
    for (auto& q : g.controls) q = qubit_map[q];
    for (auto& q : g.neg_controls) q = qubit_map[q];
    push(std::move(g));
  }
  return *this;
}

Circuit& Circuit::append(const Circuit& other) {
  expects(other.num_qubits() <= num_qubits_, "append: register too small");
  for (const Gate& g : other.gates_) push(g);
  return *this;
}

Circuit::Counts Circuit::counts() const {
  Counts c;
  for (const auto& g : gates_) {
    ++c.by_kind[g.kind];
    ++c.total;
    if (is_parameterized(g.kind)) ++c.rotations;
    const std::size_t touched = g.targets.size() + g.controls.size() + g.neg_controls.size();
    if (touched >= 2) ++c.two_qubit_plus;
    if (g.kind == GateKind::kX && !(g.controls.empty() && g.neg_controls.empty())) {
      ++c.mcx_by_controls[static_cast<std::uint32_t>(g.controls.size() +
                                                     g.neg_controls.size())];
    }
  }
  return c;
}

std::uint64_t Circuit::depth() const {
  std::vector<std::uint64_t> busy_until(num_qubits_, 0);
  std::uint64_t depth = 0;
  for (const auto& g : gates_) {
    if (g.kind == GateKind::kGlobalPhase) continue;
    std::uint64_t layer = 0;
    auto consider = [&](std::uint32_t q) { layer = std::max(layer, busy_until[q]); };
    for (auto q : g.targets) consider(q);
    for (auto q : g.controls) consider(q);
    for (auto q : g.neg_controls) consider(q);
    ++layer;
    for (auto q : g.targets) busy_until[q] = layer;
    for (auto q : g.controls) busy_until[q] = layer;
    for (auto q : g.neg_controls) busy_until[q] = layer;
    depth = std::max(depth, layer);
  }
  return depth;
}

}  // namespace mpqls::qsim
