// Logical T-gate cost models for fault-tolerant execution (the paper's
// Section III-C4 counts quantum cost in T gates, citing Khattar-Gidney
// [24] for multi-controlled Toffolis, Remaud-Vandaele [34] for adders and
// Ross-Selinger for rotation synthesis). These are *models*: they map a
// circuit's gate census to a T estimate without performing the synthesis.
#pragma once

#include <cstdint>

#include "qsim/circuit.hpp"

namespace mpqls::resources {

enum class McxModel {
  kCleanAncilla,        ///< C^k X = (2k-3) Toffolis at 7T each (k >= 3)
  kConditionallyClean,  ///< Khattar-Gidney 2024: ~4(k-2)+7 T with reuseable ancillae
};

struct TCountOptions {
  McxModel mcx_model = McxModel::kConditionallyClean;
  /// Synthesis accuracy per rotation (Ross-Selinger): T ~ 3.02 log2(1/eps) + 9.2.
  double rotation_synthesis_eps = 1e-10;
};

/// T-cost of a k-controlled X (k = 0 or 1 are Clifford: cost 0).
std::uint64_t tcount_mcx(std::uint32_t controls, McxModel model);

/// T-cost of synthesizing one arbitrary-angle rotation.
std::uint64_t tcount_rotation(double synthesis_eps);

struct CircuitTCount {
  std::uint64_t t_gates = 0;          ///< estimated logical T count
  std::uint64_t oracle_gates = 0;     ///< dense-unitary payloads left unsynthesized
  std::uint64_t rotation_gates = 0;   ///< rotations that went through synthesis
  std::uint64_t mcx_gates = 0;        ///< multi-controlled X/Z counted
};

/// Walk a circuit and apply the model. Dense kUnitary payloads (used by
/// the oracle-level dense embedding) cannot be costed honestly and are
/// reported in `oracle_gates` instead of being guessed.
CircuitTCount circuit_tcount(const qsim::Circuit& circuit, const TCountOptions& opts = {});

}  // namespace mpqls::resources
