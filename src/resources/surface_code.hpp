// Surface-code footprint model (Horsman et al., New J. Phys. 14:123011 —
// the paper's reference [21] for why deep QSVT circuits need fault
// tolerance). Maps a logical workload (T count, logical qubit count,
// target failure probability) to code distance, physical qubits and wall
// time under the standard scaling p_L ~ A (p/p_th)^((d+1)/2).
#pragma once

#include <cstdint>

namespace mpqls::resources {

struct SurfaceCodeAssumptions {
  double physical_error_rate = 1e-3;  ///< p
  double threshold = 1e-2;            ///< p_th
  double prefactor = 0.1;             ///< A
  double cycle_time_us = 1.0;         ///< one stabilizer round
  /// Physical qubits per magic-state factory, in units of d^2 patches
  /// (a coarse 15-to-1 distillation footprint).
  double factory_patches = 12.0;
  std::uint32_t factories = 4;
};

struct SurfaceCodeEstimate {
  std::uint32_t code_distance = 0;
  std::uint64_t physical_qubits = 0;    ///< data patches + routing + factories
  double runtime_seconds = 0.0;         ///< T-gate-limited wall time
  double logical_failure_probability = 0.0;  ///< achieved for the whole run
};

/// Estimate the footprint of running `t_count` T gates on `logical_qubits`
/// logical qubits with overall failure probability <= `target_failure`.
SurfaceCodeEstimate surface_code_estimate(std::uint64_t t_count, std::uint32_t logical_qubits,
                                          double target_failure = 1e-2,
                                          const SurfaceCodeAssumptions& assume = {});

}  // namespace mpqls::resources
