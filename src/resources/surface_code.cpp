#include "resources/surface_code.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace mpqls::resources {

SurfaceCodeEstimate surface_code_estimate(std::uint64_t t_count, std::uint32_t logical_qubits,
                                          double target_failure,
                                          const SurfaceCodeAssumptions& assume) {
  expects(t_count > 0 && logical_qubits > 0, "surface_code_estimate: empty workload");
  expects(assume.physical_error_rate < assume.threshold,
          "surface_code_estimate: physical error rate above threshold");

  // Spacetime volume in logical-qubit-rounds: each T gate costs ~d rounds
  // (lattice-surgery consumption of one magic state).
  // Find the smallest odd distance whose total failure stays in budget.
  const double ratio = assume.physical_error_rate / assume.threshold;
  SurfaceCodeEstimate est;
  for (std::uint32_t d = 3; d <= 101; d += 2) {
    const double p_logical_per_round = assume.prefactor * std::pow(ratio, (d + 1) / 2.0);
    const double rounds = static_cast<double>(t_count) * d;
    const double total_failure =
        p_logical_per_round * rounds * static_cast<double>(logical_qubits);
    if (total_failure <= target_failure) {
      est.code_distance = d;
      est.logical_failure_probability = total_failure;
      const double patch = 2.0 * d * d;  // data + ancilla halves of a patch
      const double routing = 0.5;        // routing overhead fraction
      est.physical_qubits = static_cast<std::uint64_t>(
          std::ceil(patch * logical_qubits * (1.0 + routing) +
                    assume.factories * assume.factory_patches * d * d));
      est.runtime_seconds = rounds / static_cast<double>(assume.factories) *
                            assume.cycle_time_us * 1e-6;
      return est;
    }
  }
  throw contract_violation("surface_code_estimate: no distance <= 101 meets the budget");
}

}  // namespace mpqls::resources
