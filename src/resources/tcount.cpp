#include "resources/tcount.hpp"

#include <bit>
#include <cmath>

namespace mpqls::resources {

std::uint64_t tcount_mcx(std::uint32_t controls, McxModel model) {
  if (controls <= 1) return 0;  // X / CNOT are Clifford
  if (controls == 2) return 7;  // Toffoli
  switch (model) {
    case McxModel::kCleanAncilla:
      return 7ull * (2ull * controls - 3ull);
    case McxModel::kConditionallyClean:
      // Khattar & Gidney (arXiv:2407.17966): 4(k-2) Toffoli-equivalent T
      // plus the final Toffoli.
      return 4ull * (controls - 2ull) + 7ull;
  }
  return 0;
}

std::uint64_t tcount_rotation(double synthesis_eps) {
  const double bits = std::log2(1.0 / synthesis_eps);
  return static_cast<std::uint64_t>(std::ceil(3.02 * bits + 9.2));
}

CircuitTCount circuit_tcount(const qsim::Circuit& circuit, const TCountOptions& opts) {
  CircuitTCount out;
  const std::uint64_t rot_cost = tcount_rotation(opts.rotation_synthesis_eps);
  for (const auto& g : circuit.gates()) {
    const auto k = static_cast<std::uint32_t>(g.controls.size() + g.neg_controls.size());
    switch (g.kind) {
      case qsim::GateKind::kT:
      case qsim::GateKind::kTdg:
        out.t_gates += (k == 0) ? 1 : 2 * rot_cost + 2 * tcount_mcx(k, opts.mcx_model);
        break;
      case qsim::GateKind::kX:
      case qsim::GateKind::kY:
      case qsim::GateKind::kZ:
        out.t_gates += tcount_mcx(k, opts.mcx_model);
        out.mcx_gates += (k >= 2);
        break;
      case qsim::GateKind::kH:
      case qsim::GateKind::kS:
      case qsim::GateKind::kSdg:
        // Clifford when uncontrolled; controlled versions via 2 rotations.
        if (k >= 1) out.t_gates += 2 * rot_cost + 2 * tcount_mcx(k, opts.mcx_model);
        break;
      case qsim::GateKind::kRx:
      case qsim::GateKind::kRy:
      case qsim::GateKind::kRz:
      case qsim::GateKind::kPhase: {
        ++out.rotation_gates;
        // k-controlled rotation: 2 plain rotations + 2 C^k X.
        out.t_gates += (k == 0) ? rot_cost : 2 * rot_cost + 2 * tcount_mcx(k, opts.mcx_model);
        break;
      }
      case qsim::GateKind::kGlobalPhase:
        break;
      case qsim::GateKind::kSwap:
        // 3 CNOTs; controlled swap = Fredkin-style.
        if (k >= 1) out.t_gates += tcount_mcx(k + 1, opts.mcx_model) + 7;
        break;
      case qsim::GateKind::kDiagonal: {
        const std::size_t dim = g.diagonal ? g.diagonal->size() : 0;
        bool all_pm_one = true;
        if (g.diagonal) {
          for (const auto& v : *g.diagonal) {
            if (std::abs(v.imag()) > 1e-15 || std::abs(std::abs(v.real()) - 1.0) > 1e-15) {
              all_pm_one = false;
            }
          }
        }
        if (all_pm_one) {
          // +-1 diagonal == multi-controlled Z up to relabeling.
          out.t_gates += tcount_mcx(k + static_cast<std::uint32_t>(
                                            dim > 1 ? std::bit_width(dim - 1) : 1) - 1,
                                    opts.mcx_model);
          out.mcx_gates += 1;
        } else {
          // General diagonal: one synthesized rotation per entry.
          out.rotation_gates += dim;
          out.t_gates += dim * rot_cost + 2 * tcount_mcx(k, opts.mcx_model);
        }
        break;
      }
      case qsim::GateKind::kUnitary:
        ++out.oracle_gates;
        break;
    }
  }
  return out;
}

}  // namespace mpqls::resources
