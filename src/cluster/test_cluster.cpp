#include "cluster/test_cluster.hpp"

#include <chrono>

#include "common/contracts.hpp"

namespace mpqls::cluster {

TestCluster::TestCluster(TestClusterOptions options) {
  expects(options.workers >= 1, "cluster: need at least one worker");

  CoordinatorOptions coordinator = options.coordinator;
  coordinator.worker_urls.clear();
  for (std::size_t i = 0; i < options.workers; ++i) {
    net::DaemonOptions worker = options.worker;
    worker.port = 0;  // ephemeral
    if (i < options.worker_backends.size()) {
      worker.service.enabled_backends = options.worker_backends[i];
    }
    auto daemon = std::make_unique<net::SolverDaemon>(worker);
    daemon->start();
    coordinator.worker_urls.push_back("127.0.0.1:" + std::to_string(daemon->port()));
    workers_.push_back(std::move(daemon));
  }

  coordinator_ = std::make_unique<Coordinator>(coordinator);
  coordinator_->start();
}

TestCluster::~TestCluster() { stop(); }

void TestCluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  coordinator_->stop();
  for (auto& worker : workers_) worker->drain(std::chrono::milliseconds(10000));
}

}  // namespace mpqls::cluster
