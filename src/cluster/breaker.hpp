// Per-worker circuit breaker: closed while the worker answers, open after
// a run of consecutive transport failures (submits skip it outright
// instead of burning a connect timeout per job), half-open after a cool-off
// — one trial request is let through, and its outcome decides between
// closing the breaker and re-arming the cool-off.
//
// HTTP-level rejections (429 saturation, 503 drain) are NOT failures: the
// worker answered, so the breaker stays closed and the router handles the
// rejection as spillover. Only transport-level errors (connect refused,
// deadline expired, connection died) count.
//
// The breaker is externally synchronized — the coordinator guards each
// worker's breaker with that worker's mutex — and clock-injected so the
// state machine is unit-testable without sleeping.
#pragma once

#include <chrono>
#include <cstdint>

namespace mpqls::cluster {

enum class BreakerState { kClosed, kHalfOpen, kOpen };

const char* to_string(BreakerState state);

struct BreakerOptions {
  /// Consecutive transport failures that trip the breaker open.
  int failure_threshold = 3;
  /// Cool-off before an open breaker lets a half-open trial through.
  std::chrono::milliseconds open_duration{2000};
};

class CircuitBreaker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit CircuitBreaker(BreakerOptions options = {}) : options_(options) {}

  /// May a request be sent now? Open: no, until the cool-off elapses —
  /// then half-open, where exactly one caller at a time gets a trial
  /// (allow() returns true and latches until record_success/failure).
  bool allow(TimePoint now) {
    refresh(now);
    switch (state_) {
      case BreakerState::kClosed: return true;
      case BreakerState::kOpen: return false;
      case BreakerState::kHalfOpen:
        if (trial_in_flight_) return false;
        trial_in_flight_ = true;
        return true;
    }
    return false;
  }

  void record_success() {
    trial_in_flight_ = false;
    consecutive_failures_ = 0;
    state_ = BreakerState::kClosed;
  }

  void record_failure(TimePoint now) {
    trial_in_flight_ = false;
    if (state_ == BreakerState::kHalfOpen) {
      trip(now);  // the trial failed: straight back to open
      return;
    }
    if (state_ == BreakerState::kOpen) return;  // a late failure from before the trip
    if (++consecutive_failures_ >= options_.failure_threshold) trip(now);
  }

  BreakerState state(TimePoint now) {
    refresh(now);
    return state_;
  }

  /// Cumulative closed/half-open -> open transitions.
  std::uint64_t trips() const { return trips_; }

 private:
  void refresh(TimePoint now) {
    if (state_ == BreakerState::kOpen && now - opened_at_ >= options_.open_duration) {
      state_ = BreakerState::kHalfOpen;
      trial_in_flight_ = false;
    }
  }

  void trip(TimePoint now) {
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    consecutive_failures_ = 0;
    ++trips_;
  }

  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  bool trial_in_flight_ = false;
  TimePoint opened_at_{};
  std::uint64_t trips_ = 0;
};

}  // namespace mpqls::cluster
