#include "cluster/coordinator.hpp"

#include <algorithm>
#include <charconv>
#include <set>
#include <stdexcept>

#include "cluster/metrics_aggregate.hpp"
#include "common/contracts.hpp"
#include "common/hash.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "service/fingerprint.hpp"
#include "service/json_io.hpp"
#include "service/limits.hpp"
#include "wire/codec.hpp"

namespace mpqls::cluster {

namespace {

using net::HttpRequest;
using net::HttpResponse;

HttpResponse json_response(int status, Json body) {
  HttpResponse r;
  r.status = status;
  r.body = body.dump() + "\n";
  return r;
}

HttpResponse error_json(int status, const std::string& message) {
  Json j = Json::object();
  j["error"] = message;
  return json_response(status, std::move(j));
}

/// Mirror a worker's answer to the cluster client. Framing headers
/// (Content-Length, Connection) are regenerated on serialize; semantic
/// ones (Retry-After, Allow, Content-Type) pass through.
HttpResponse mirror(const net::HttpClient::Response& upstream) {
  HttpResponse r;
  r.status = upstream.status;
  r.body = upstream.body;
  for (const auto& [name, value] : upstream.headers) {
    if (name == "Content-Length" || name == "Connection") continue;
    if (name == "Content-Type") {
      r.content_type = value;
      continue;
    }
    r.headers.emplace_back(name, value);
  }
  return r;
}

/// Rewrite the worker's own job id to the cluster id in a JSON payload,
/// without parsing it: result bodies can be megabytes, and the daemon
/// always renders `"job_id":"job-N"` verbatim. A miss leaves the body
/// untouched (the client still has the cluster id it submitted with).
std::string rewrite_job_id(std::string body, const std::string& worker_id,
                           const std::string& cluster_id) {
  const std::string needle = "\"job_id\":\"" + worker_id + "\"";
  const auto pos = body.find(needle);
  if (pos != std::string::npos) {
    body.replace(pos, needle.size(), "\"job_id\":\"" + cluster_id + "\"");
  }
  return body;
}

/// Backend names out of a worker's /v1/healthz body. Anything unexpected
/// (old worker without the field, malformed body) yields the empty list —
/// "capabilities unknown", which routing treats as eligible.
std::vector<std::string> parse_backend_names(const std::string& healthz_body) {
  std::vector<std::string> names;
  try {
    const Json body = Json::parse(healthz_body);
    if (!body.is_object() || !body.contains("backends")) return names;
    for (const auto& b : body.at("backends").as_array()) {
      names.push_back(b.at("name").as_string());
    }
  } catch (const std::exception&) {
    names.clear();
  }
  return names;
}

}  // namespace

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half-open";
    default: return "open";
  }
}

struct Coordinator::Worker {
  Worker(WorkerEndpoint ep, const CoordinatorOptions& options)
      : endpoint(ep),
        pool(ep, options.worker_deadlines, options.max_idle_connections),
        probe_client(ep.host, ep.port, options.probe_deadlines),
        breaker(options.breaker) {}

  WorkerEndpoint endpoint;
  WorkerClientPool pool;
  net::HttpClient probe_client;  ///< prober thread only
  mutable std::mutex mutex;      ///< guards breaker + the counters below
  CircuitBreaker breaker;
  std::size_t in_flight = 0;
  std::uint64_t submits_accepted = 0;
  std::uint64_t affinity_wins = 0;
  std::uint64_t transport_failures = 0;
  bool probe_ok = true;
  /// Execution backends the worker advertised on its last healthy probe
  /// (the "backends" capability list in /v1/healthz). Empty = not probed
  /// yet or a pre-capability worker — treated as eligible for everything,
  /// letting the worker's own 400 be the backstop.
  std::vector<std::string> backends;
};

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)),
      ring_([&] {
        expects(!options_.worker_urls.empty(), "cluster: at least one worker url required");
        std::vector<std::string> ids;
        for (const auto& url : options_.worker_urls) ids.push_back(parse_endpoint(url).id);
        return WorkerRing(ids);
      }()),
      proxy_pool_(options_.proxy_threads),
      server_(
          net::HttpServer::Options{options_.bind_address, options_.port, options_.limits,
                                   options_.max_connections, options_.idle_timeout},
          net::HttpServer::AsyncHandler(
              [this](const HttpRequest& request, net::HttpServer::ResponseHandle responder) {
                handle(request, responder);
              })) {
  for (const auto& url : options_.worker_urls) {
    workers_.push_back(std::make_unique<Worker>(parse_endpoint(url), options_));
  }

  // The router runs on proxy threads (blocking outbound I/O is fine
  // there); only healthz bypasses it and answers on the event loop.
  router_.add("POST", "/v1/jobs",
              [this](const HttpRequest& request, const net::PathParams&) {
                return do_submit(request);
              });
  router_.add("GET", "/v1/jobs",
              [this](const HttpRequest& request, const net::PathParams&) {
                return do_list(request);
              });
  router_.add("GET", "/v1/jobs/{id}",
              [this](const HttpRequest& request, const net::PathParams& params) {
                return do_job_request(request, params.get("id"), /*is_cancel=*/false);
              });
  router_.add("GET", "/v1/jobs/{id}/result",
              [this](const HttpRequest& request, const net::PathParams& params) {
                return do_job_request(request, params.get("id"), /*is_cancel=*/false, "/result");
              });
  router_.add("GET", "/v1/jobs/{id}/trace",
              [this](const HttpRequest& request, const net::PathParams& params) {
                return do_job_trace(request, params.get("id"));
              });
  router_.add("DELETE", "/v1/jobs/{id}",
              [this](const HttpRequest& request, const net::PathParams& params) {
                return do_job_request(request, params.get("id"), /*is_cancel=*/true);
              });
  router_.add("PUT", "/v1/matrices",
              [this](const HttpRequest& request, const net::PathParams&) {
                return do_upload(request);
              });
  router_.add("GET", "/v1/metrics", [this](const HttpRequest&, const net::PathParams&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = metrics_text();
    return r;
  });
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  server_.start();
  probing_.store(true);
  probe_thread_ = std::thread([this] { probe_loop(); });
}

void Coordinator::stop() {
  if (probe_thread_.joinable()) {
    probing_.store(false);
    probe_cv_.notify_all();
    probe_thread_.join();
  }
  server_.stop();
}

void Coordinator::handle(const HttpRequest& request,
                         net::HttpServer::ResponseHandle responder) {
  if (request.method == "GET" && request.path == "/v1/healthz") {
    responder.respond(healthz_now());
    return;
  }
  // Admission control on the proxy pool: a backlog this deep means every
  // proxy thread is stuck on slow workers — shed load instead of queueing
  // unboundedly behind them.
  if (proxy_backlog_.load() >= options_.max_proxy_backlog) {
    HttpResponse r = error_json(503, "coordinator proxy backlog full; retry later");
    r.headers.emplace_back("Retry-After", "1");
    responder.respond(std::move(r));
    return;
  }
  ++proxy_backlog_;
  proxy_pool_.submit([this, request = HttpRequest(request), responder]() mutable {
    HttpResponse response;
    try {
      response = router_.dispatch(request);
    } catch (const std::exception& e) {
      response = error_json(500, e.what());
    } catch (...) {
      response = error_json(500, "internal error");
    }
    --proxy_backlog_;
    responder.respond(std::move(response));
  });
}

std::uint64_t Coordinator::affinity_key(const Json& parsed, const std::string& body) const {
  // The request-side stand-in for service::fingerprint: hash the matrix
  // description plus the preparation-relevant options. Two submits of the
  // same job JSON always key identically (and so land on the same warm
  // worker); semantically-equal-but-reformatted specs may key differently,
  // which only costs one extra preparation, never correctness.
  try {
    // A by-ref request keys on the matrix_ref itself: uploads route by
    // the same content hash, so the ref's ring home is the worker whose
    // store (and context cache) is warm for it.
    if (parsed.contains("matrix_ref")) {
      return service::u64_from_hex(parsed.at("matrix_ref").as_string());
    }
    Fnv1a h;
    if (parsed.contains("matrix")) {
      h.str(parsed.at("matrix").dump());
      if (parsed.contains("options")) h.str(parsed.at("options").dump());
      return h.digest();
    }
    return h.str(body).digest();
  } catch (const std::exception&) {
    return Fnv1a().str(body).digest();
  }
}

std::vector<std::size_t> Coordinator::candidate_order(std::uint64_t key) {
  if (options_.affinity_routing) return ring_.candidates(key);
  // Cache-blind baseline: pick a pseudo-random start worker and rotate
  // from there (still deterministic failover order). The start is a
  // mixed counter, NOT counter % N — a plain rotation against a periodic
  // workload aliases into accidental affinity, which would make the
  // baseline meaningless.
  const std::uint64_t z = mix64(rotation_.fetch_add(1) + 0x9E3779B97F4A7C15ull);
  std::vector<std::size_t> order(workers_.size());
  const std::size_t start = static_cast<std::size_t>(z % workers_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = (start + i) % workers_.size();
  return order;
}

HttpResponse Coordinator::do_submit(const HttpRequest& request) {
  const Timer route_timer;
  // Malformed bodies die here (mirroring the worker's 400 contract)
  // instead of being posted N times to the ring. A binary frame is never
  // JSON-parsed anywhere on this path: its affinity key streams straight
  // off the frame prefix (the matrix_ref, or the content hash of the
  // inline matrix), so by-ref submits key identically to the upload that
  // created the ref. JSON bodies parse once, reused for the key.
  const std::string* ctype = request.header("Content-Type");
  const bool is_frame = ctype != nullptr && wire::is_frame_content_type(*ctype);
  // Same adoption order as the worker front door: header, body-level id,
  // mint. Whatever wins here is what the worker adopts too — the
  // x-mpqls-trace header forwarded with the submit POST outranks the
  // body field on the worker, so one id names the job end to end.
  trace::TraceId trace_id{};
  if (const std::string* th = request.header("x-mpqls-trace")) {
    trace::TraceId::parse(*th, trace_id);
  }
  std::uint64_t key = 0;
  // The execution backend the job names (JSON only — binary frames carry
  // no backend field and always run each worker's default): candidates
  // whose probed capability list lacks it are skipped below.
  std::string backend;
  if (is_frame) {
    try {
      key = wire::request_affinity_key(request.body);
      if (trace_id.zero()) trace_id = wire::peek_request_trace(request.body);
    } catch (const wire::WireError& e) {
      return error_json(400, e.what());
    }
  } else {
    Json parsed_body;
    try {
      parsed_body = Json::parse(request.body);
    } catch (const JsonParseError& e) {
      return error_json(400, e.what());
    }
    if (trace_id.zero() && parsed_body.contains("trace_id") &&
        parsed_body.at("trace_id").is_string()) {
      trace::TraceId::parse(parsed_body.at("trace_id").as_string(), trace_id);
    }
    key = affinity_key(parsed_body, request.body);
    backend = service::requested_backend(parsed_body);
    if (parsed_body.is_object() && parsed_body.contains("dist_workers")) {
      return do_submit_dist(request, parsed_body, key, trace_id);
    }
  }
  const std::string forward_type = ctype != nullptr ? *ctype : "application/json";
  const std::size_t preferred = ring_.home(key);
  const auto order = candidate_order(key);

  // Coordinator-side trace: the proxy span covers the candidate loop
  // (every attempt, spills included); the worker's own span tree is
  // stitched under it by do_job_trace.
  auto trace_ctx = trace::make_trace(trace_id);
  trace::ScopedSpan proxy_span(trace_ctx, "proxy");
  net::HeaderList trace_header;
  trace_header.emplace_back("x-mpqls-trace", trace_ctx->id().hex());
  std::uint64_t attempts = 0;

  bool saw_saturated = false;
  bool saw_incapable = false;
  HttpResponse saturated_response;
  for (const std::size_t index : order) {
    Worker& worker = *workers_[index];
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      // Capability filter before rendezvous admission: a worker whose
      // last probe advertised a backend list WITHOUT the requested name
      // cannot run the job — skip it without burning a connection. An
      // empty list (unprobed / pre-capability worker) stays eligible;
      // the worker's own 400 is the backstop when that guess is wrong.
      if (!backend.empty() && !worker.backends.empty() &&
          std::find(worker.backends.begin(), worker.backends.end(), backend) ==
              worker.backends.end()) {
        saw_incapable = true;
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.capability_skips;
        continue;
      }
      if (!worker.breaker.allow(std::chrono::steady_clock::now())) {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.retries;
        continue;  // breaker open: excluded without burning a connect
      }
      ++worker.in_flight;
    }

    net::HttpClient::Response response;
    bool transport_ok = false;
    std::string transport_error;
    {
      auto lease = worker.pool.acquire();
      try {
        ++attempts;
        response = lease->post("/v1/jobs", request.body, forward_type, trace_header);
        transport_ok = true;
      } catch (const std::exception& e) {
        // Broader than HttpError on purpose: wait_fd can throw
        // std::system_error on poll failure, and ANY exception here must
        // still discard the mid-exchange client, settle in_flight, and
        // release a latched half-open trial — or the worker is excluded
        // forever and the poisoned connection returns to the pool.
        lease.discard();
        transport_error = e.what();
      }
    }

    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      --worker.in_flight;
      if (transport_ok) {
        worker.breaker.record_success();
      } else {
        worker.breaker.record_failure(std::chrono::steady_clock::now());
        ++worker.transport_failures;
      }
    }

    if (!transport_ok) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.retries;  // next ring candidate, this worker excluded
      continue;
    }

    if (response.status == 202) {
      std::string worker_job_id;
      try {
        worker_job_id = Json::parse(response.body).at("job_id").as_string();
      } catch (const std::exception&) {
        // The worker admitted the job but we cannot name it — a 502 the
        // client can act on beats a generic 500 (the job itself is
        // orphaned on the worker either way).
        return error_json(502, "worker " + worker.endpoint.id + " answered 202 without a job id");
      }
      const std::string cluster_id = "w" + std::to_string(index) + "-" + worker_job_id;
      const bool is_affinity_hit = index == preferred;
      // Grab the span id BEFORE finish() (which releases it), then close
      // the proxy span at the moment the worker's 202 is in hand — its
      // duration is the submit round-trip, spills included.
      const std::uint64_t proxy_span_id = proxy_span.id();
      // The ring name ("w<k>"), not endpoint.id: it matches the cluster
      // job-id prefix and the worker="..." metric labels.
      proxy_span.attr("worker", "w" + std::to_string(index));
      proxy_span.attr("attempts", attempts);
      if (!is_affinity_hit) proxy_span.attr("spillover", std::uint64_t{1});
      proxy_span.finish();
      remember_route(cluster_id, Route{index, trace_ctx, proxy_span_id});
      route_latency_.observe(route_timer.seconds());
      {
        std::lock_guard<std::mutex> lock(worker.mutex);
        ++worker.submits_accepted;
        if (is_affinity_hit) ++worker.affinity_wins;
      }
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.submits_accepted;
        if (is_affinity_hit) {
          ++stats_.affinity_hits;
        } else {
          ++stats_.spillovers;
        }
      }

      Json j = Json::object();
      j["job_id"] = cluster_id;
      j["state"] = "queued";
      j["status_url"] = "/v1/jobs/" + cluster_id;
      j["worker"] = worker.endpoint.id;
      j["trace_id"] = trace_ctx->id().hex();
      return json_response(202, std::move(j));
    }

    if (response.status == 429 || response.status == 503) {
      // Saturated or draining: the worker is alive, this is spillover
      // pressure, not a breaker event.
      saw_saturated = true;
      saturated_response = mirror(response);
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.retries;
      continue;
    }

    if (response.status >= 400 && response.status < 500) {
      return mirror(response);  // deterministic rejection (schema, size): don't spread it
    }

    // 5xx: treat like saturation — try the next candidate.
    saw_saturated = true;
    saturated_response = mirror(response);
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.retries;
  }

  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  if (saw_saturated) {
    ++stats_.saturated_rejects;
    return saturated_response;  // mirror the 429/503 (keeps the Retry-After)
  }
  if (saw_incapable) {
    // Every reachable candidate was known to lack the requested backend.
    // 503 (not 400): capability sets change as workers are reconfigured
    // or probed, so the condition is retryable, unlike a schema defect.
    ++stats_.unroutable;
    return error_json(503, "no cluster worker supports backend \"" + backend + "\"");
  }
  ++stats_.unroutable;
  return error_json(503, "no cluster worker reachable");
}

HttpResponse Coordinator::do_submit_dist(const HttpRequest& request, const Json& parsed,
                                         std::uint64_t key, trace::TraceId trace_id) {
  const Timer route_timer;
  std::size_t world = 0;
  try {
    world = static_cast<std::size_t>(parsed.at("dist_workers").as_uint());
  } catch (const std::exception& e) {
    return error_json(400, std::string("dist_workers: ") + e.what());
  }
  if (world < 2 || world > 64 || (world & (world - 1)) != 0) {
    return error_json(400, "dist_workers must be a power of two in [2, 64]");
  }
  if (parsed.contains("shard")) {
    return error_json(400, "dist_workers and an explicit shard block are mutually exclusive");
  }
  const std::string backend = service::requested_backend(parsed);

  // Membership in ring order for the job's affinity key: resubmits of
  // the same job re-form the same group (warm context caches on every
  // rank). Health filter mirrors do_submit — skip open breakers, failed
  // probes, and workers whose capability list lacks the backend — but
  // runs BEFORE any admission POST: a partially-admitted group is worse
  // than useless (its admitted ranks would block in their first exchange
  // until the await timeout), so the group is formed all-or-nothing.
  std::vector<std::size_t> members;
  for (const std::size_t index : candidate_order(key)) {
    Worker& worker = *workers_[index];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.probe_ok) continue;
    if (worker.breaker.state(std::chrono::steady_clock::now()) == BreakerState::kOpen) continue;
    if (!backend.empty() && !worker.backends.empty() &&
        std::find(worker.backends.begin(), worker.backends.end(), backend) ==
            worker.backends.end()) {
      continue;
    }
    members.push_back(index);
    if (members.size() == world) break;
  }
  if (members.size() < world) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.dist_rejects;
    return error_json(503, "shard group incomplete: " + std::to_string(world) +
                               " workers required, " + std::to_string(members.size()) +
                               " healthy");
  }

  // The group id names this one solve's rendezvous on every member's
  // exchange hub. Mixing a monotone sequence in keeps two concurrent
  // submits of the SAME job (same key) in disjoint groups.
  const std::uint64_t group =
      mix64(key ^ mix64(group_seq_.fetch_add(1) + 0x9E3779B97F4A7C15ull));
  std::vector<std::string> peers;
  peers.reserve(world);
  for (const std::size_t index : members) peers.push_back(workers_[index]->endpoint.id);

  auto trace_ctx = trace::make_trace(trace_id);
  trace::ScopedSpan proxy_span(trace_ctx, "dist_proxy");
  proxy_span.attr("world", static_cast<std::uint64_t>(world));
  net::HeaderList trace_header;
  trace_header.emplace_back("x-mpqls-trace", trace_ctx->id().hex());

  // Fan the admissions out, rank by rank. Each rank's body is the
  // original minus "dist_workers" plus its own "shard" block; the peers
  // list is identical everywhere (rank r's own endpoint included, at
  // position r), which is what lets every member compute the same
  // exchange schedule.
  std::vector<std::string> worker_job_ids(world);
  std::size_t admitted = 0;
  std::string failure;
  for (std::size_t rank = 0; rank < world; ++rank) {
    Json body = parsed;
    body.as_object().erase("dist_workers");
    Json shard = Json::object();
    shard["group"] = service::u64_hex(group);
    shard["rank"] = static_cast<std::uint64_t>(rank);
    shard["world"] = static_cast<std::uint64_t>(world);
    Json peer_list = Json::array();
    for (const auto& p : peers) peer_list.push_back(p);
    shard["peers"] = std::move(peer_list);
    body["shard"] = std::move(shard);

    Worker& worker = *workers_[members[rank]];
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      ++worker.in_flight;
    }
    net::HttpClient::Response response;
    bool transport_ok = false;
    {
      auto lease = worker.pool.acquire();
      try {
        response = lease->post("/v1/jobs", body.dump(), "application/json", trace_header);
        transport_ok = true;
      } catch (const std::exception& e) {  // see do_submit: settle state on ANY throw
        lease.discard();
        failure = "rank " + std::to_string(rank) + " (" + worker.endpoint.id +
                  ") unreachable: " + e.what();
      }
    }
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      --worker.in_flight;
      if (transport_ok) {
        worker.breaker.record_success();
      } else {
        worker.breaker.record_failure(std::chrono::steady_clock::now());
        ++worker.transport_failures;
      }
    }
    if (!transport_ok) break;
    if (response.status != 202) {
      failure = "rank " + std::to_string(rank) + " (" + worker.endpoint.id +
                ") refused admission with status " + std::to_string(response.status);
      break;
    }
    try {
      worker_job_ids[rank] = Json::parse(response.body).at("job_id").as_string();
    } catch (const std::exception&) {
      failure = "rank " + std::to_string(rank) + " (" + worker.endpoint.id +
                ") answered 202 without a job id";
      break;
    }
    ++admitted;
  }

  if (admitted < world) {
    // Unwind: cancel what was admitted so no rank sits blocked in its
    // first exchange until the await timeout. Best effort — a rank whose
    // job already started answers 409 and fails on its own via the
    // transport timeout, which is the designed backstop.
    for (std::size_t rank = 0; rank < admitted; ++rank) {
      Worker& worker = *workers_[members[rank]];
      auto lease = worker.pool.acquire();
      try {
        lease->del("/v1/jobs/" + worker_job_ids[rank]);
      } catch (const std::exception&) {
        lease.discard();
      }
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.dist_rejects;
    return error_json(502, "shard group admission failed: " + failure);
  }

  const std::string cluster_id =
      "w" + std::to_string(members[0]) + "-" + worker_job_ids[0];
  const std::uint64_t proxy_span_id = proxy_span.id();
  proxy_span.attr("worker", "w" + std::to_string(members[0]));
  proxy_span.finish();
  // Every rank's job is pollable through the coordinator; rank 0's id is
  // the primary (its result is what the client reads — all ranks render
  // identical solutions, see qsvt/dist_solve).
  for (std::size_t rank = 0; rank < world; ++rank) {
    remember_route("w" + std::to_string(members[rank]) + "-" + worker_job_ids[rank],
                   Route{members[rank], rank == 0 ? trace_ctx : nullptr,
                         rank == 0 ? proxy_span_id : 0});
  }
  route_latency_.observe(route_timer.seconds());
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.dist_submits;
    stats_.submits_accepted += world;
  }

  Json j = Json::object();
  j["job_id"] = cluster_id;
  j["state"] = "queued";
  j["status_url"] = "/v1/jobs/" + cluster_id;
  j["shard_group"] = service::u64_hex(group);
  j["shard_world"] = static_cast<std::uint64_t>(world);
  Json shard_jobs = Json::array();
  for (std::size_t rank = 0; rank < world; ++rank) {
    shard_jobs.push_back("w" + std::to_string(members[rank]) + "-" + worker_job_ids[rank]);
  }
  j["shard_jobs"] = std::move(shard_jobs);
  j["trace_id"] = trace_ctx->id().hex();
  return json_response(202, std::move(j));
}

void Coordinator::remember_route(const std::string& cluster_id, Route route) {
  std::lock_guard<std::mutex> lock(table_mutex_);
  routed_[cluster_id] = std::move(route);
  routed_order_.push_back(cluster_id);
  while (routed_order_.size() > options_.routing_table_capacity) {
    routed_.erase(routed_order_.front());
    routed_order_.pop_front();
  }
}

std::optional<Coordinator::Route> Coordinator::routed_record(
    const std::string& cluster_id) const {
  std::lock_guard<std::mutex> lock(table_mutex_);
  const auto it = routed_.find(cluster_id);
  if (it == routed_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::pair<std::size_t, std::string>> Coordinator::resolve(
    const std::string& cluster_id) const {
  // The id embeds its route ("w<k>-<worker job id>"), so resolution
  // survives routing-table eviction; the table is still consulted first
  // as the authoritative record for ids it remembers.
  std::size_t index = workers_.size();
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    const auto it = routed_.find(cluster_id);
    if (it != routed_.end()) index = it->second.worker;
  }
  if (cluster_id.size() < 3 || cluster_id[0] != 'w') return std::nullopt;
  const auto dash = cluster_id.find('-');
  if (dash == std::string::npos || dash + 1 >= cluster_id.size()) return std::nullopt;
  if (index == workers_.size()) {
    std::size_t parsed = 0;
    const char* begin = cluster_id.data() + 1;
    const char* end = cluster_id.data() + dash;
    const auto [ptr, ec] = std::from_chars(begin, end, parsed);
    if (ec != std::errc() || ptr != end || parsed >= workers_.size()) return std::nullopt;
    index = parsed;
  }
  return std::make_pair(index, cluster_id.substr(dash + 1));
}

HttpResponse Coordinator::do_job_request(const HttpRequest& request,
                                         const std::string& cluster_id, bool is_cancel,
                                         const std::string& suffix) {
  const auto route = resolve(cluster_id);
  if (!route) return error_json(404, "unknown job id");
  const auto [index, worker_job_id] = *route;
  Worker& worker = *workers_[index];

  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.breaker.state(std::chrono::steady_clock::now()) == BreakerState::kOpen) {
      return error_json(502, "worker " + worker.endpoint.id + " is unavailable (breaker open)");
    }
    ++worker.in_flight;
  }

  net::HttpClient::Response response;
  bool transport_ok = false;
  std::string transport_error;
  {
    auto lease = worker.pool.acquire();
    try {
      const std::string target = "/v1/jobs/" + worker_job_id + suffix;
      // Forward Accept so a client can pull the binary result encoding
      // straight through the proxy.
      net::HeaderList extra;
      if (const std::string* accept = request.header("Accept")) {
        extra.emplace_back("Accept", *accept);
      }
      response = is_cancel ? lease->del(target) : lease->get(target, extra);
      transport_ok = true;
    } catch (const std::exception& e) {  // see do_submit: must settle state on ANY throw
      lease.discard();
      transport_error = e.what();
    }
  }

  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    --worker.in_flight;
    if (transport_ok) {
      worker.breaker.record_success();
    } else {
      worker.breaker.record_failure(std::chrono::steady_clock::now());
      ++worker.transport_failures;
    }
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    if (is_cancel) {
      ++stats_.proxied_cancels;
    } else {
      ++stats_.proxied_polls;
    }
  }

  if (!transport_ok) {
    return error_json(502, "worker " + worker.endpoint.id + " unreachable: " + transport_error);
  }
  HttpResponse out = mirror(response);
  out.body = rewrite_job_id(std::move(out.body), worker_job_id, cluster_id);
  return out;
}

HttpResponse Coordinator::do_job_trace(const HttpRequest& request,
                                       const std::string& cluster_id) {
  HttpResponse upstream = do_job_request(request, cluster_id, /*is_cancel=*/false, "/trace");
  if (upstream.status != 200) return upstream;

  // Stitch the worker's span tree under the coordinator's proxy span:
  // worker span ids shift by a fixed base (they can never collide with
  // coordinator ids — span buffers are far smaller than the base),
  // top-level worker spans (parent 0) re-parent onto the proxy span, and
  // worker start offsets rebase onto the proxy span's start so the
  // merged timeline is consistent. If the route record was evicted (or
  // predates tracing), the worker's answer passes through unstitched —
  // still a complete single-daemon trace.
  const auto record = routed_record(cluster_id);
  if (!record || !record->trace) return upstream;

  Json worker_json;
  try {
    worker_json = Json::parse(upstream.body);
  } catch (const JsonParseError&) {
    return upstream;
  }
  if (!worker_json.contains("spans")) return upstream;

  constexpr std::uint64_t kWorkerSpanBase = 1u << 20;
  Json merged = service::trace_to_json(*record->trace);
  merged["job_id"] = cluster_id;
  if (worker_json.contains("state")) merged["state"] = worker_json.at("state");
  merged["spans_dropped"] =
      merged.uint_or("spans_dropped", 0) + worker_json.uint_or("spans_dropped", 0);

  double proxy_start_us = 0.0;
  for (const auto& span : merged.at("spans").as_array()) {
    if (span.uint_or("id", 0) == record->proxy_span) {
      proxy_start_us = span.number_or("start_us", 0.0);
      break;
    }
  }
  for (const auto& span : worker_json.at("spans").as_array()) {
    Json shifted = span;
    shifted["id"] = span.uint_or("id", 0) + kWorkerSpanBase;
    const std::uint64_t parent = span.uint_or("parent", 0);
    shifted["parent"] = parent == 0 ? record->proxy_span : parent + kWorkerSpanBase;
    shifted["start_us"] = span.number_or("start_us", 0.0) + proxy_start_us;
    merged["spans"].push_back(std::move(shifted));
  }
  return json_response(200, std::move(merged));
}

HttpResponse Coordinator::do_upload(const HttpRequest& request) {
  // Compute the content hash locally — it IS the matrix_ref the workers
  // will answer with, and the ring key by-ref submits route on.
  const std::string* ctype = request.header("Content-Type");
  const bool is_frame = ctype != nullptr && wire::is_frame_content_type(*ctype);
  std::uint64_t key = 0;
  try {
    if (is_frame) {
      key = wire::hash_matrix_frame(request.body);
    } else {
      const Json parsed = Json::parse(request.body);
      key = service::hash_matrix(
          service::matrix_from_json(parsed.contains("matrix") ? parsed.at("matrix") : parsed));
    }
  } catch (const std::exception& e) {
    return error_json(400, e.what());
  }
  const std::string forward_type = ctype != nullptr ? *ctype : "application/json";

  // Replicate to every reachable worker, ring home first. Uploads are
  // rare, bounded (the body cap) and idempotent by content hash, and a
  // warm replica on every worker means a spillover submit never bounces
  // through the 404 re-upload protocol. Workers that are down or fail
  // mid-upload simply stay cold: the first by-ref submit they see answers
  // 404, the client re-uploads, and this fan-out heals them — that
  // round-trip is the self-healing contract, not an error path.
  bool have_primary = false;
  HttpResponse primary;
  for (const std::size_t index : ring_.candidates(key)) {
    Worker& worker = *workers_[index];
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      if (!worker.breaker.allow(std::chrono::steady_clock::now())) continue;
      ++worker.in_flight;
    }

    net::HttpClient::Response response;
    bool transport_ok = false;
    {
      auto lease = worker.pool.acquire();
      try {
        response = lease->put("/v1/matrices", request.body, forward_type);
        transport_ok = true;
      } catch (const std::exception&) {  // see do_submit: settle state on ANY throw
        lease.discard();
      }
    }

    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      --worker.in_flight;
      if (transport_ok) {
        worker.breaker.record_success();
      } else {
        worker.breaker.record_failure(std::chrono::steady_clock::now());
        ++worker.transport_failures;
      }
    }
    if (!transport_ok) continue;

    if (response.status >= 400 && response.status < 500) {
      return mirror(response);  // deterministic rejection: don't spread it
    }
    if (!have_primary && response.status < 300) {
      primary = mirror(response);
      have_primary = true;
    }
  }

  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.proxied_uploads;
  }
  if (!have_primary) return error_json(503, "no cluster worker accepted the upload");
  return primary;
}

HttpResponse Coordinator::do_list(const HttpRequest& request) {
  const std::string target =
      request.query.empty() ? "/v1/jobs" : "/v1/jobs?" + request.query;
  // Honor ?limit=N as a bound on the MERGED answer, not per worker.
  // Workers have no cross-worker clock, so true global newest-first is
  // not reconstructible; interleaving the per-worker newest-first lists
  // round-robin is the closest deterministic approximation and keeps the
  // daemon's bound intact (documented in DESIGN.md).
  std::size_t limit = 100;
  if (!net::parse_limit_param(request.query, 1000, &limit)) {
    return error_json(400, "limit must be a non-negative integer");
  }

  std::vector<std::vector<Json>> per_worker(workers_.size());
  std::size_t unreachable = 0;
  for (std::size_t index = 0; index < workers_.size(); ++index) {
    Worker& worker = *workers_[index];
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      if (worker.breaker.state(std::chrono::steady_clock::now()) == BreakerState::kOpen) {
        ++unreachable;
        continue;
      }
    }
    // Ephemeral short-deadline client (not the pool): a scrape fan-out
    // over N workers runs sequentially on one proxy thread, so one slow
    // worker must cost probe-scale seconds, not the 15 s submit budget.
    try {
      net::HttpClient scrape(worker.endpoint.host, worker.endpoint.port,
                             options_.probe_deadlines);
      const auto response = scrape.get(target);
      if (response.status != 200) {
        ++unreachable;
        continue;
      }
      const Json body = Json::parse(response.body);
      for (const auto& entry : body.at("jobs").as_array()) {
        Json withRoute = entry;
        withRoute["job_id"] =
            "w" + std::to_string(index) + "-" + entry.at("job_id").as_string();
        withRoute["worker"] = worker.endpoint.id;
        per_worker[index].push_back(std::move(withRoute));
      }
    } catch (const std::exception&) {
      ++unreachable;
    }
  }

  Json jobs = Json::array();
  std::size_t taken = 0;
  for (std::size_t rank = 0; taken < limit; ++rank) {
    bool any = false;
    for (std::size_t index = 0; index < per_worker.size() && taken < limit; ++index) {
      if (rank >= per_worker[index].size()) continue;
      any = true;
      jobs.push_back(std::move(per_worker[index][rank]));
      ++taken;
    }
    if (!any) break;
  }

  Json body = Json::object();
  body["count"] = static_cast<std::uint64_t>(taken);
  body["workers_unreachable"] = static_cast<std::uint64_t>(unreachable);
  body["jobs"] = std::move(jobs);
  return json_response(200, std::move(body));
}

HttpResponse Coordinator::healthz_now() {
  std::size_t healthy = 0;
  std::set<std::string> backend_union;
  Json worker_backends = Json::object();
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    if (worker->breaker.state(std::chrono::steady_clock::now()) != BreakerState::kOpen &&
        worker->probe_ok) {
      ++healthy;
    }
    Json names = Json::array();
    for (const auto& name : worker->backends) {
      backend_union.insert(name);
      names.push_back(name);
    }
    worker_backends[worker->endpoint.id] = std::move(names);
  }
  Json j = Json::object();
  j["status"] = healthy > 0 ? "ok" : "degraded";
  j["workers"] = static_cast<std::uint64_t>(workers_.size());
  j["workers_healthy"] = static_cast<std::uint64_t>(healthy);
  // Capability picture from the probes: the union of execution backends
  // some worker can run, and the per-worker lists routing filters on (an
  // empty list = that worker not yet probed / pre-capability).
  Json backends = Json::array();
  for (const auto& name : backend_union) backends.push_back(name);
  j["backends"] = std::move(backends);
  j["worker_backends"] = std::move(worker_backends);
  return json_response(healthy > 0 ? 200 : 503, std::move(j));
}

Coordinator::RoutingStats Coordinator::routing_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::vector<Coordinator::WorkerSnapshot> Coordinator::workers() const {
  std::vector<WorkerSnapshot> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    WorkerSnapshot s;
    s.id = worker->endpoint.id;
    s.breaker = worker->breaker.state(std::chrono::steady_clock::now());
    s.breaker_trips = worker->breaker.trips();
    s.in_flight = worker->in_flight;
    s.submits_accepted = worker->submits_accepted;
    s.affinity_wins = worker->affinity_wins;
    s.transport_failures = worker->transport_failures;
    s.probe_ok = worker->probe_ok;
    s.backends = worker->backends;
    out.push_back(std::move(s));
  }
  return out;
}

std::string Coordinator::metrics_text() {
  const auto stats = routing_stats();
  const auto snapshots = workers();

  MetricsWriter m;
  m.gauge("mpqls_cluster_workers", "Configured cluster workers.",
          static_cast<std::uint64_t>(workers_.size()));
  std::uint64_t trips_total = 0;
  for (const auto& s : snapshots) trips_total += s.breaker_trips;
  m.counter("mpqls_cluster_submits_total", "Jobs a worker answered 202 for.",
            stats.submits_accepted);
  m.counter("mpqls_cluster_affinity_hits_total",
            "Accepted submits that landed on the ring-preferred worker.", stats.affinity_hits);
  m.counter("mpqls_cluster_spillovers_total",
            "Accepted submits that landed on a non-preferred worker.", stats.spillovers);
  m.counter("mpqls_cluster_retries_total",
            "Per-attempt failures or breaker skips that moved to the next candidate.",
            stats.retries);
  m.counter("mpqls_cluster_capability_skips_total",
            "Candidates skipped because their probed backends lacked the requested one.",
            stats.capability_skips);
  m.counter("mpqls_cluster_breaker_trips_total", "Circuit-breaker open transitions.",
            trips_total);
  m.counter("mpqls_cluster_saturated_rejects_total",
            "Submits refused because every candidate answered 429/503/5xx.",
            stats.saturated_rejects);
  m.counter("mpqls_cluster_unroutable_total",
            "Submits refused because no worker was reachable at all.", stats.unroutable);
  m.counter("mpqls_cluster_proxied_polls_total", "GET /v1/jobs/{id} requests proxied.",
            stats.proxied_polls);
  m.counter("mpqls_cluster_proxied_cancels_total", "DELETE /v1/jobs/{id} requests proxied.",
            stats.proxied_cancels);
  m.counter("mpqls_cluster_proxied_uploads_total",
            "PUT /v1/matrices uploads fanned out to the workers.", stats.proxied_uploads);
  m.counter("mpqls_cluster_dist_submits_total",
            "Distributed submits fully admitted (every shard rank answered 202).",
            stats.dist_submits);
  m.counter("mpqls_cluster_dist_rejects_total",
            "Distributed submits refused (shard group incomplete or partial admission).",
            stats.dist_rejects);
  m.gauge("mpqls_cluster_proxy_backlog", "Deferred requests awaiting a proxy thread.",
          static_cast<std::uint64_t>(proxy_backlog_.load()));

  // Same family name (and bucket bounds) as the workers' per-stage
  // histograms; the worker copies arrive below relabeled with worker="w<k>",
  // so the coordinator's stage="route" series never collides.
  m.histogram("mpqls_latency_seconds",
              "Coordinator submit latency: body parse + routing + worker POST "
              "(spillover attempts included).",
              route_latency_, {{"stage", "route"}});

  // Per-worker routing gauges, one labeled series per worker.
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const auto& s = snapshots[i];
    const std::string label = "w" + std::to_string(i);
    m.gauge("mpqls_cluster_worker_breaker_state",
            "0 closed, 1 half-open, 2 open.",
            std::uint64_t{s.breaker == BreakerState::kClosed
                              ? 0u
                              : (s.breaker == BreakerState::kHalfOpen ? 1u : 2u)},
            {{"worker", label}});
  }
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const std::string label = "w" + std::to_string(i);
    m.gauge("mpqls_cluster_worker_in_flight", "Proxied requests on the wire to this worker.",
            static_cast<std::uint64_t>(snapshots[i].in_flight), {{"worker", label}});
  }
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const std::string label = "w" + std::to_string(i);
    const auto& s = snapshots[i];
    const double ratio =
        s.submits_accepted == 0
            ? 0.0
            : static_cast<double>(s.affinity_wins) / static_cast<double>(s.submits_accepted);
    m.gauge("mpqls_cluster_worker_affinity_hit_ratio",
            "Fraction of this worker's accepted submits it was the ring home for.", ratio,
            {{"worker", label}});
  }
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const std::string label = "w" + std::to_string(i);
    m.counter("mpqls_cluster_worker_transport_failures_total",
              "Connect/timeout/closed failures talking to this worker.",
              snapshots[i].transport_failures, {{"worker", label}});
  }

  // Fetch and merge every reachable worker's own families, relabeled.
  std::vector<std::pair<std::string, std::string>> bodies;
  for (std::size_t index = 0; index < workers_.size(); ++index) {
    Worker& worker = *workers_[index];
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      if (worker.breaker.state(std::chrono::steady_clock::now()) == BreakerState::kOpen) {
        continue;
      }
    }
    // Short-deadline ephemeral client, same reasoning as do_list: a
    // stalled worker must not pin a proxy thread for the submit budget.
    try {
      net::HttpClient scrape(worker.endpoint.host, worker.endpoint.port,
                             options_.probe_deadlines);
      const auto response = scrape.get("/v1/metrics");
      if (response.status == 200) {
        bodies.emplace_back("w" + std::to_string(index), response.body);
      }
    } catch (const std::exception&) {
      // Omitted from the merge; breaker bookkeeping is the prober's job.
    }
  }
  m.raw(merge_worker_metrics(bodies));
  return m.str();
}

void Coordinator::probe_loop() {
  while (probing_.load()) {
    for (std::size_t index = 0; index < workers_.size() && probing_.load(); ++index) {
      Worker& worker = *workers_[index];
      {
        std::lock_guard<std::mutex> lock(worker.mutex);
        // allow() doubles as the half-open gate: when the cool-off
        // elapses, the probe itself is the trial request.
        if (!worker.breaker.allow(std::chrono::steady_clock::now())) continue;
      }
      bool ok = false;
      std::vector<std::string> backends;
      try {
        const auto response = worker.probe_client.get("/v1/healthz");
        ok = response.status == 200;
        // Capability refresh piggybacks on the liveness probe: the worker
        // advertises its enabled execution backends in the healthz body.
        // A body without the list (pre-capability worker, parse trouble)
        // leaves the list empty — eligible for everything.
        if (ok) backends = parse_backend_names(response.body);
      } catch (const std::exception&) {
        ok = false;
      }
      std::lock_guard<std::mutex> lock(worker.mutex);
      worker.probe_ok = ok;
      if (ok) worker.backends = std::move(backends);
      if (ok) {
        worker.breaker.record_success();
      } else {
        worker.breaker.record_failure(std::chrono::steady_clock::now());
        ++worker.transport_failures;
      }
    }
    std::unique_lock<std::mutex> lock(probe_mutex_);
    probe_cv_.wait_for(lock, options_.probe_interval, [this] { return !probing_.load(); });
  }
}

}  // namespace mpqls::cluster
