// Merging N workers' Prometheus text expositions into one: every sample
// gets a worker="<label>" label injected, and families are regrouped so
// each `# HELP`/`# TYPE` preamble appears exactly once with all its
// labeled series consecutive — scrapers reject duplicate family
// preambles, which naive concatenation would produce.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mpqls::cluster {

/// `bodies` pairs a worker label ("w0", "w1", ...) with that worker's
/// /v1/metrics payload. Unparseable lines are dropped, not propagated.
std::string merge_worker_metrics(const std::vector<std::pair<std::string, std::string>>& bodies);

}  // namespace mpqls::cluster
