#include "cluster/metrics_aggregate.hpp"

#include <string_view>
#include <unordered_map>

namespace mpqls::cluster {

namespace {

struct Family {
  std::string help;  ///< full "# HELP ..." line (first worker wins)
  std::string type;  ///< full "# TYPE ..." line
  std::vector<std::string> samples;
};

/// Family name of a sample line: everything before '{' or the first space.
std::string_view sample_name(std::string_view line) {
  const auto cut = line.find_first_of("{ ");
  return cut == std::string_view::npos ? line : line.substr(0, cut);
}

/// Inject worker="<label>" as the first label of a sample line.
std::string relabel(std::string_view line, const std::string& label) {
  const std::string inject = "worker=\"" + label + "\"";
  const auto brace = line.find('{');
  const auto space = line.find(' ');
  std::string out;
  if (brace != std::string_view::npos && (space == std::string_view::npos || brace < space)) {
    if (brace + 1 >= line.size()) return std::string(line);  // truncated line: pass through
    out.assign(line.substr(0, brace + 1));
    out += inject;
    if (line[brace + 1] != '}') out += ',';
    out += line.substr(brace + 1);
  } else if (space != std::string_view::npos) {
    out.assign(line.substr(0, space));
    out += '{';
    out += inject;
    out += '}';
    out += line.substr(space);
  } else {
    return std::string(line);  // malformed; pass through untouched
  }
  return out;
}

}  // namespace

std::string merge_worker_metrics(
    const std::vector<std::pair<std::string, std::string>>& bodies) {
  std::vector<std::string> family_order;
  std::unordered_map<std::string, Family> families;

  for (const auto& [label, body] : bodies) {
    std::string_view rest = body;
    while (!rest.empty()) {
      auto eol = rest.find('\n');
      if (eol == std::string_view::npos) eol = rest.size();
      const std::string_view line = rest.substr(0, eol);
      rest.remove_prefix(eol == rest.size() ? eol : eol + 1);
      if (line.empty()) continue;

      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const std::string_view after = line.substr(7);
        const auto name = std::string(sample_name(after));
        auto [it, inserted] = families.try_emplace(name);
        if (inserted) family_order.push_back(name);
        std::string& slot = line[2] == 'H' ? it->second.help : it->second.type;
        if (slot.empty()) slot.assign(line);
        continue;
      }
      if (line[0] == '#') continue;  // other comments

      const auto name = std::string(sample_name(line));
      if (name.empty()) continue;
      auto [it, inserted] = families.try_emplace(name);
      if (inserted) family_order.push_back(name);
      it->second.samples.push_back(relabel(line, label));
    }
  }

  std::string out;
  for (const auto& name : family_order) {
    const Family& family = families[name];
    if (family.samples.empty()) continue;
    if (!family.help.empty()) {
      out += family.help;
      out += '\n';
    }
    if (!family.type.empty()) {
      out += family.type;
      out += '\n';
    }
    for (const auto& sample : family.samples) {
      out += sample;
      out += '\n';
    }
  }
  return out;
}

}  // namespace mpqls::cluster
