// The cluster front door: one coordinator daemon fronting N solver
// workers (each a stock SolverDaemon), sharding submits by
// matrix-fingerprint affinity.
//
//   POST   /v1/jobs       route by affinity      -> 202 {job_id: "w<k>-job-<n>"}
//                         (JSON or binary application/x-mpqls-frame
//                         bodies; frames route without a JSON parse)
//                         "dist_workers": W in a JSON body fans the job
//                         out to a W-member shard group (one submit per
//                         rank, 202 names rank 0; shard_jobs lists all);
//                         too few healthy workers -> 503 (binary frames
//                         carry no dist field and always route whole)
//                         every worker saturated -> 429/503 mirrored
//                         no worker reachable    -> 503
//   GET    /v1/jobs       merged bounded listing -> 200
//   GET    /v1/jobs/{id}  proxied poll           -> worker's answer
//   GET    /v1/jobs/{id}/result  proxied result  -> worker's answer
//                         (Accept forwarded, so binary results proxy too)
//   GET    /v1/jobs/{id}/trace  stitched trace   -> coordinator spans
//                         (admission, submit proxy) with the worker's
//                         span tree re-parented under the proxy span
//                         (see net/DESIGN.md, "Trace propagation")
//   DELETE /v1/jobs/{id}  proxied cancel         -> worker's answer
//   PUT    /v1/matrices   content-addressed upload, replicated to every
//                         reachable worker (ring home's answer mirrored)
//   GET    /v1/healthz    cluster liveness       -> 200 (never blocks)
//   GET    /v1/metrics    own counters + every worker's metrics,
//                         relabeled with worker="w<k>"
//
// Threading: the HTTP event loop never does outbound I/O — requests are
// deferred (HttpServer::AsyncHandler) onto a proxy pool whose threads
// speak to workers through deadline-bounded pooled HttpClients. Routing
// picks the rendezvous-ring candidate order for the job's affinity key
// (a content hash of the matrix + qsvt-options JSON, the request-side
// proxy of service::fingerprint); saturated (429/503) workers spill to
// the next candidate, transport failures additionally feed that worker's
// circuit breaker and retry on the next candidate with the failed worker
// excluded. A background prober keeps breaker state honest between
// submits. Submits are at-least-once under a response timeout: the
// attempt may have been admitted by the timed-out worker, but the id the
// client gets always names a worker that actually answered 202.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/breaker.hpp"
#include "cluster/ring.hpp"
#include "cluster/worker_client.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "net/http_server.hpp"
#include "net/router.hpp"

namespace mpqls::cluster {

struct CoordinatorOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (tests); see port()
  std::vector<std::string> worker_urls;  ///< "host:port" per worker; >= 1
  net::ParseLimits limits;
  std::size_t max_connections = 256;
  std::chrono::seconds idle_timeout{60};

  std::size_t proxy_threads = 4;       ///< outbound-I/O workers
  std::size_t max_proxy_backlog = 128;  ///< deferred requests beyond this get 503
  /// Deadlines for proxied worker calls. Submits are admission-only on
  /// the worker (the solve runs async), so a short read budget is enough
  /// and is what makes failover prompt.
  net::Deadlines worker_deadlines{std::chrono::milliseconds(2000),
                                  std::chrono::milliseconds(5000),
                                  std::chrono::milliseconds(15000)};
  net::Deadlines probe_deadlines{std::chrono::milliseconds(500),
                                 std::chrono::milliseconds(1000),
                                 std::chrono::milliseconds(2000)};
  BreakerOptions breaker;
  std::chrono::milliseconds probe_interval{500};

  /// Affinity (rendezvous ring) routing; false = rotate workers
  /// round-robin, the cache-blind baseline the scaling bench compares
  /// against.
  bool affinity_routing = true;
  std::size_t max_idle_connections = 4;   ///< kept-warm sockets per worker
  std::size_t routing_table_capacity = 8192;  ///< job-id entries; oldest pruned
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Bind and serve; returns once the listener and the prober are up.
  void start();

  /// Stop probing, stop the HTTP server, drain in-flight proxy tasks.
  /// Workers are NOT touched — they keep running whatever they accepted.
  void stop();

  std::uint16_t port() const { return server_.port(); }
  std::size_t worker_count() const { return workers_.size(); }

  /// Cumulative routing counters (all monotone).
  struct RoutingStats {
    std::uint64_t submits_accepted = 0;  ///< jobs some worker answered 202 for
    std::uint64_t affinity_hits = 0;     ///< accepted on the ring-preferred worker
    std::uint64_t spillovers = 0;        ///< accepted on a non-preferred worker
    std::uint64_t retries = 0;           ///< per-attempt failures/skips that moved on
    std::uint64_t capability_skips = 0;  ///< candidates skipped for lacking the backend
    std::uint64_t saturated_rejects = 0;  ///< every candidate answered 429/503
    std::uint64_t unroutable = 0;         ///< no worker reachable at all
    std::uint64_t proxied_polls = 0;
    std::uint64_t proxied_cancels = 0;
    std::uint64_t proxied_uploads = 0;  ///< PUT /v1/matrices fan-outs
    std::uint64_t dist_submits = 0;     ///< shard groups fully admitted (all ranks 202)
    std::uint64_t dist_rejects = 0;     ///< dist submits refused (group incomplete/partial)
  };
  RoutingStats routing_stats() const;

  /// Point-in-time view of one worker (metrics + CLI rendering).
  struct WorkerSnapshot {
    std::string id;
    BreakerState breaker = BreakerState::kClosed;
    std::uint64_t breaker_trips = 0;
    std::size_t in_flight = 0;           ///< proxied requests on the wire now
    std::uint64_t submits_accepted = 0;
    std::uint64_t affinity_wins = 0;     ///< accepted jobs it was the ring home for
    std::uint64_t transport_failures = 0;
    bool probe_ok = true;
    /// Execution backends advertised on the last healthy probe (empty =
    /// capabilities unknown; such a worker is routed everything).
    std::vector<std::string> backends;
  };
  std::vector<WorkerSnapshot> workers() const;

  /// The /v1/metrics payload: own routing counters + per-worker gauges +
  /// every reachable worker's families relabeled with worker="w<k>".
  /// Does outbound I/O — never call from the event loop (the HTTP
  /// handler runs it on the proxy pool).
  std::string metrics_text();

 private:
  struct Worker;

  /// Event-loop entry: answers healthz inline, defers the rest.
  void handle(const net::HttpRequest& request, net::HttpServer::ResponseHandle responder);

  net::HttpResponse do_submit(const net::HttpRequest& request);
  /// Distributed submit (JSON body carried "dist_workers": W): form a
  /// W-member shard group from healthy workers, rewrite the body per rank
  /// (a "shard" block naming the group, rank and peer endpoints replaces
  /// "dist_workers"), fan the submits out, and answer with rank 0's
  /// cluster id. All-or-nothing: a rank that refuses admission triggers a
  /// best-effort cancel of the already-accepted ranks and a 502/503 —
  /// a partially-admitted group would deadlock in its first exchange.
  net::HttpResponse do_submit_dist(const net::HttpRequest& request, const Json& parsed,
                                   std::uint64_t key, trace::TraceId trace_id);
  /// Proxy GET/DELETE for one job; `suffix` extends the worker target
  /// ("" for the status poll, "/result" for the result route).
  net::HttpResponse do_job_request(const net::HttpRequest& request, const std::string& cluster_id,
                                   bool is_cancel, const std::string& suffix = "");
  net::HttpResponse do_job_trace(const net::HttpRequest& request, const std::string& cluster_id);
  net::HttpResponse do_list(const net::HttpRequest& request);
  net::HttpResponse do_upload(const net::HttpRequest& request);
  net::HttpResponse healthz_now();

  /// What the routing table remembers per cluster job id: the worker it
  /// landed on, plus the coordinator-side trace whose proxy span the
  /// worker's span tree is stitched under by do_job_trace. The trace
  /// costs one bounded span buffer per retained route entry.
  struct Route {
    std::size_t worker = 0;
    trace::TraceContext trace;
    std::uint64_t proxy_span = 0;
  };

  std::uint64_t affinity_key(const Json& parsed, const std::string& body) const;
  std::vector<std::size_t> candidate_order(std::uint64_t key);
  void remember_route(const std::string& cluster_id, Route route);
  std::optional<std::pair<std::size_t, std::string>> resolve(const std::string& cluster_id) const;
  std::optional<Route> routed_record(const std::string& cluster_id) const;
  void probe_loop();

  CoordinatorOptions options_;
  WorkerRing ring_;
  std::vector<std::unique_ptr<Worker>> workers_;
  net::Router router_;  ///< dispatched on proxy threads, not the event loop

  mutable std::mutex stats_mutex_;
  RoutingStats stats_;

  mutable std::mutex table_mutex_;
  std::unordered_map<std::string, Route> routed_;  ///< cluster job id -> route + trace
  std::deque<std::string> routed_order_;           ///< insertion order (pruning)

  /// Submit-handler wall clock (parse + routing + worker POST) — the
  /// stage="route" series of the coordinator's mpqls_latency_seconds.
  Histogram route_latency_;

  std::atomic<std::uint64_t> rotation_{0};      ///< round-robin cursor (random mode)
  std::atomic<std::uint64_t> group_seq_{0};     ///< shard-group id uniquifier
  std::atomic<std::size_t> proxy_backlog_{0};   ///< deferred requests in flight

  std::atomic<bool> probing_{false};
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  std::thread probe_thread_;

  // Declared after every member the proxy tasks touch and BEFORE the
  // server: destruction runs server first (its loop enqueues into the
  // pool), then the pool (its tasks read workers_/stats_), then the rest.
  ThreadPool proxy_pool_;
  net::HttpServer server_;
};

}  // namespace mpqls::cluster
