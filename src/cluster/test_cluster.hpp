// In-process cluster harness: N SolverDaemon workers on ephemeral
// loopback ports plus a Coordinator fronting them — what the loopback
// tests, the scaling bench, and `service_server cluster --workers N` all
// use. Everything binds 127.0.0.1; nothing leaves the machine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/coordinator.hpp"
#include "net/daemon.hpp"

namespace mpqls::cluster {

struct TestClusterOptions {
  std::size_t workers = 2;
  /// Per-worker daemon configuration (port is overridden to ephemeral).
  net::DaemonOptions worker;
  /// Heterogeneous-capability override: entry i replaces the enabled
  /// execution backends of worker i (empty entry = every registered
  /// backend; workers beyond the list keep `worker`'s setting). Lets
  /// routing tests model a ring where only some workers have "blocked".
  std::vector<std::vector<std::string>> worker_backends;
  /// Coordinator configuration (worker_urls/port are filled in; port 0
  /// unless set). Probe/breaker/routing knobs pass through.
  CoordinatorOptions coordinator;
};

class TestCluster {
 public:
  explicit TestCluster(TestClusterOptions options = {});
  ~TestCluster();

  TestCluster(const TestCluster&) = delete;
  TestCluster& operator=(const TestCluster&) = delete;

  Coordinator& coordinator() { return *coordinator_; }
  net::SolverDaemon& worker(std::size_t index) { return *workers_.at(index); }
  std::size_t worker_count() const { return workers_.size(); }

  /// The coordinator's listening port.
  std::uint16_t port() const { return coordinator_->port(); }

  /// Stop the coordinator, then drain every worker. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  std::vector<std::unique_ptr<net::SolverDaemon>> workers_;
  std::unique_ptr<Coordinator> coordinator_;
  bool stopped_ = false;
};

}  // namespace mpqls::cluster
