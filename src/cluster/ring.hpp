// Rendezvous (highest-random-weight) hashing over the worker set: every
// (worker, key) pair gets a score, and a key's candidate order is the
// workers sorted by descending score. Properties the router leans on:
//
//  - Affinity: the same key always prefers the same worker, so repeated
//    matrices land where the ContextCache is already warm.
//  - Minimal disruption: removing a worker only re-homes the keys it
//    owned; every other key's order among the survivors is unchanged —
//    exactly what failover spillover needs (the next candidate is the
//    same worker whether computed before or after the loss).
//  - Statelessness: no token table to rebalance; scores are recomputed
//    per lookup from the worker ids (cheap FNV mixes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpqls::cluster {

class WorkerRing {
 public:
  /// Worker ids must be distinct (typically "host:port").
  explicit WorkerRing(const std::vector<std::string>& worker_ids);

  /// All worker indices ordered by descending rendezvous score for `key`:
  /// element 0 is the affinity home, the rest is the spillover order.
  std::vector<std::size_t> candidates(std::uint64_t key) const;

  /// The affinity home alone (candidates(key)[0]).
  std::size_t home(std::uint64_t key) const;

  std::size_t size() const { return seeds_.size(); }

 private:
  std::uint64_t score(std::size_t worker, std::uint64_t key) const;

  std::vector<std::uint64_t> seeds_;  ///< per-worker digest of its id
};

}  // namespace mpqls::cluster
