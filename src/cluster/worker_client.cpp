#include "cluster/worker_client.hpp"

#include <charconv>
#include <stdexcept>

namespace mpqls::cluster {

WorkerEndpoint parse_endpoint(const std::string& url) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.rfind(scheme, 0) == 0) rest = rest.substr(scheme.size());
  while (!rest.empty() && rest.back() == '/') rest.pop_back();

  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
    throw std::invalid_argument("worker url must be host:port, got: " + url);
  }
  unsigned port = 0;
  const char* begin = rest.data() + colon + 1;
  const char* end = rest.data() + rest.size();
  const auto [ptr, ec] = std::from_chars(begin, end, port);
  if (ec != std::errc() || ptr != end || port == 0 || port > 65535) {
    throw std::invalid_argument("worker url has a bad port: " + url);
  }

  WorkerEndpoint e;
  e.host = rest.substr(0, colon);
  e.port = static_cast<std::uint16_t>(port);
  e.id = e.host + ":" + rest.substr(colon + 1);
  return e;
}

WorkerClientPool::Lease WorkerClientPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!idle_.empty()) {
      auto client = std::move(idle_.back());
      idle_.pop_back();
      return Lease(this, std::move(client));
    }
  }
  // Construction is cheap (no connect until the first request), so a cold
  // pool never serializes callers behind the mutex.
  return Lease(this, std::make_unique<net::HttpClient>(endpoint_.host, endpoint_.port, deadlines_));
}

void WorkerClientPool::release(std::unique_ptr<net::HttpClient> client) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (idle_.size() < max_idle_) idle_.push_back(std::move(client));
}

}  // namespace mpqls::cluster
