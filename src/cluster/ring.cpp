#include "cluster/ring.hpp"

#include <algorithm>
#include <numeric>

#include "common/hash.hpp"

namespace mpqls::cluster {

WorkerRing::WorkerRing(const std::vector<std::string>& worker_ids) {
  seeds_.reserve(worker_ids.size());
  for (const auto& id : worker_ids) seeds_.push_back(Fnv1a().str(id).digest());
}

std::uint64_t WorkerRing::score(std::size_t worker, std::uint64_t key) const {
  // mix64 over the combined (worker, key) digest. FNV-1a alone is too
  // weak here: with a handful of similar worker ids its scores are
  // correlated enough that one worker wins most keys, which defeats the
  // whole point of sharding (observed: 5 of 8 keys on one of 4 workers).
  return mix64(seeds_[worker] ^ (key + 0x9E3779B97F4A7C15ull));
}

std::vector<std::size_t> WorkerRing::candidates(std::uint64_t key) const {
  std::vector<std::size_t> order(seeds_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::uint64_t> scores(seeds_.size());
  for (std::size_t i = 0; i < seeds_.size(); ++i) scores[i] = score(i, key);
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    // Index breaks score ties so the order is total and deterministic.
    return scores[a] != scores[b] ? scores[a] > scores[b] : a < b;
  });
  return order;
}

std::size_t WorkerRing::home(std::uint64_t key) const {
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < seeds_.size(); ++i) {
    const std::uint64_t s = score(i, key);
    if (i == 0 || s > best_score) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

}  // namespace mpqls::cluster
