// Outbound side of the coordinator: one WorkerClientPool per worker
// daemon, handing out deadline-bounded keep-alive HttpClients (the
// deadline logic lives in net::connect_tcp/wait_fd — the same single
// implementation the blocking CLI client uses). Proxy threads check a
// client out, run one or more round trips, and return it; up to
// `max_idle` warm connections are kept per worker, the rest are simply
// dropped (the kernel closes them).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/http_client.hpp"

namespace mpqls::cluster {

struct WorkerEndpoint {
  std::string host;
  std::uint16_t port = 0;
  std::string id;  ///< "host:port" — the ring identity and metrics label
};

/// Parse "host:port" (an optional "http://" prefix is tolerated).
/// Throws std::invalid_argument on anything else.
WorkerEndpoint parse_endpoint(const std::string& url);

class WorkerClientPool {
 public:
  WorkerClientPool(WorkerEndpoint endpoint, net::Deadlines deadlines, std::size_t max_idle = 4)
      : endpoint_(std::move(endpoint)), deadlines_(deadlines), max_idle_(max_idle) {}

  /// RAII checkout: returns the client to the pool on destruction unless
  /// discard() was called (use after a transport error, where the
  /// connection state is unknown — HttpClient closes its socket on error
  /// anyway, but a failing worker's stale clients are not worth keeping).
  class Lease {
   public:
    Lease(WorkerClientPool* pool, std::unique_ptr<net::HttpClient> client)
        : pool_(pool), client_(std::move(client)) {}
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_ && client_ && !discarded_) pool_->release(std::move(client_));
    }

    net::HttpClient& operator*() { return *client_; }
    net::HttpClient* operator->() { return client_.get(); }
    void discard() { discarded_ = true; }

   private:
    WorkerClientPool* pool_;
    std::unique_ptr<net::HttpClient> client_;
    bool discarded_ = false;
  };

  Lease acquire();

  const WorkerEndpoint& endpoint() const { return endpoint_; }
  const net::Deadlines& deadlines() const { return deadlines_; }

 private:
  void release(std::unique_ptr<net::HttpClient> client);

  WorkerEndpoint endpoint_;
  net::Deadlines deadlines_;
  std::size_t max_idle_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<net::HttpClient>> idle_;
};

}  // namespace mpqls::cluster
