// Dense row-major matrix and vector containers, templated on the scalar
// type so the same code runs in half, float, double, double-double and
// complex precision. This is the CPU side of the hybrid solver.
#pragma once

#include <complex>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"

namespace mpqls::linalg {

template <typename T>
using Vector = std::vector<T>;

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major construction from a nested brace list (tests/examples).
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
      expects(r.size() == cols_, "ragged initializer for Matrix");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  const T& operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(std::size_t i) { return data_.data() + i * cols_; }
  const T* row(std::size_t i) const { return data_.data() + i * cols_; }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Element-wise precision conversion for vectors (e.g. double -> half).
template <typename To, typename From>
Vector<To> convert_vector(const Vector<From>& v) {
  Vector<To> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = static_cast<To>(v[i]);
  return out;
}

/// Element-wise precision conversion for matrices.
template <typename To, typename From>
Matrix<To> convert_matrix(const Matrix<From>& m) {
  Matrix<To> out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = static_cast<To>(m(i, j));
  }
  return out;
}

template <typename T>
struct is_complex : std::false_type {};
template <typename T>
struct is_complex<std::complex<T>> : std::true_type {};
template <typename T>
inline constexpr bool is_complex_v = is_complex<T>::value;

}  // namespace mpqls::linalg
