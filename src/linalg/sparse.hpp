// Compressed-sparse-row matrices and a conjugate-gradient solver. The
// paper's closing example notes that classical solvers handle the Poisson
// system in O(N) flops — this substrate makes that comparison concrete
// (see the classical-IR ablation bench) and scales the Poisson workload
// beyond what dense storage allows.
#pragma once

#include <cstddef>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from a dense matrix, dropping entries below `tol`.
  static CsrMatrix from_dense(const Matrix<double>& A, double tol = 0.0);

  /// The 1-D Dirichlet Laplacian tridiag(-1, 2, -1) of size n.
  static CsrMatrix dirichlet_laplacian(std::size_t n);

  /// The 2-D Dirichlet Laplacian (5-point stencil) on an nx x ny grid.
  static CsrMatrix dirichlet_laplacian_2d(std::size_t nx, std::size_t ny);

  std::size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  std::size_t cols() const { return cols_count_; }
  std::size_t nonzeros() const { return values_.size(); }

  Vector<double> multiply(const Vector<double>& x) const;

  /// Dense round-trip (tests).
  Matrix<double> to_dense() const;

 private:
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  std::size_t cols_count_ = 0;
};

struct CgOptions {
  int max_iterations = 2000;
  double tolerance = 1e-12;  ///< on ||b - Ax|| / ||b||
};

struct CgResult {
  Vector<double> x;
  double relative_residual = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Conjugate gradients for symmetric positive-definite CSR systems.
CgResult cg_solve(const CsrMatrix& A, const Vector<double>& b, const CgOptions& opts = {});

}  // namespace mpqls::linalg
