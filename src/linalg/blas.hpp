// BLAS-style dense kernels templated on scalar type. Level-2/3 kernels on
// built-in floating types are parallelized with OpenMP. All kernels report
// their flop counts to the thread-local flop ledger (see flops.hpp) so the
// classical-cost columns of the paper's Table II can be measured rather
// than asserted.
#pragma once

#include <cmath>
#include <complex>

#include "common/contracts.hpp"
#include "linalg/flops.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

namespace detail {
template <typename T>
double abs_as_double(const T& v) {
  if constexpr (is_complex_v<T>) {
    return std::abs(std::complex<double>(static_cast<double>(v.real()),
                                         static_cast<double>(v.imag())));
  } else {
    return std::fabs(static_cast<double>(v));
  }
}

template <typename T>
T conj_val(const T& v) {
  if constexpr (is_complex_v<T>) {
    return std::conj(v);
  } else {
    return v;
  }
}
}  // namespace detail

/// dot(x, y) = sum_i conj(x_i) * y_i (conjugate-linear in the first
/// argument for complex scalars, matching the physics convention).
template <typename T>
T dot(const Vector<T>& x, const Vector<T>& y) {
  expects(x.size() == y.size(), "dot: size mismatch");
  T s{};
  for (std::size_t i = 0; i < x.size(); ++i) s += detail::conj_val(x[i]) * y[i];
  count_flops(2 * x.size());
  return s;
}

/// y += alpha * x
template <typename T>
void axpy(T alpha, const Vector<T>& x, Vector<T>& y) {
  expects(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  count_flops(2 * x.size());
}

template <typename T>
void scal(T alpha, Vector<T>& x) {
  for (auto& v : x) v *= alpha;
  count_flops(x.size());
}

/// Euclidean norm, computed with scaling so that half precision does not
/// overflow (max half is 65504; squaring mid-size entries would).
template <typename T>
double nrm2(const Vector<T>& x) {
  double scale = 0.0;
  for (const auto& v : x) scale = std::fmax(scale, detail::abs_as_double(v));
  if (scale == 0.0) return 0.0;
  double ssq = 0.0;
  for (const auto& v : x) {
    const double a = detail::abs_as_double(v) / scale;
    ssq += a * a;
  }
  count_flops(3 * x.size());
  return scale * std::sqrt(ssq);
}

template <typename T>
double norm_inf(const Vector<T>& x) {
  double m = 0.0;
  for (const auto& v : x) m = std::fmax(m, detail::abs_as_double(v));
  return m;
}

/// y = A * x
template <typename T>
Vector<T> matvec(const Matrix<T>& A, const Vector<T>& x) {
  expects(A.cols() == x.size(), "matvec: size mismatch");
  Vector<T> y(A.rows(), T{});
  const std::int64_t m = static_cast<std::int64_t>(A.rows());
#pragma omp parallel for if (m >= 256)
  for (std::int64_t i = 0; i < m; ++i) {
    T s{};
    const T* arow = A.row(static_cast<std::size_t>(i));
    for (std::size_t j = 0; j < A.cols(); ++j) s += arow[j] * x[j];
    y[static_cast<std::size_t>(i)] = s;
  }
  count_flops(2 * A.rows() * A.cols());
  return y;
}

/// y = A^T * x (A^H for complex scalars)
template <typename T>
Vector<T> matvec_transposed(const Matrix<T>& A, const Vector<T>& x) {
  expects(A.rows() == x.size(), "matvec_transposed: size mismatch");
  Vector<T> y(A.cols(), T{});
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const T* arow = A.row(i);
    const T xi = x[i];
    for (std::size_t j = 0; j < A.cols(); ++j) y[j] += detail::conj_val(arow[j]) * xi;
  }
  count_flops(2 * A.rows() * A.cols());
  return y;
}

/// C = A * B
template <typename T>
Matrix<T> gemm(const Matrix<T>& A, const Matrix<T>& B) {
  expects(A.cols() == B.rows(), "gemm: inner dimension mismatch");
  Matrix<T> C(A.rows(), B.cols());
  const std::int64_t m = static_cast<std::int64_t>(A.rows());
#pragma omp parallel for if (m >= 64)
  for (std::int64_t i = 0; i < m; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    for (std::size_t k = 0; k < A.cols(); ++k) {
      const T aik = A(si, k);
      const T* brow = B.row(k);
      T* crow = C.row(si);
      for (std::size_t j = 0; j < B.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  count_flops(2 * A.rows() * A.cols() * B.cols());
  return C;
}

/// A^T (A^H for complex scalars)
template <typename T>
Matrix<T> transpose(const Matrix<T>& A) {
  Matrix<T> B(A.cols(), A.rows());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) B(j, i) = detail::conj_val(A(i, j));
  }
  return B;
}

template <typename T>
Vector<T> add(const Vector<T>& x, const Vector<T>& y) {
  expects(x.size() == y.size(), "add: size mismatch");
  Vector<T> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + y[i];
  count_flops(x.size());
  return z;
}

template <typename T>
Vector<T> subtract(const Vector<T>& x, const Vector<T>& y) {
  expects(x.size() == y.size(), "subtract: size mismatch");
  Vector<T> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] - y[i];
  count_flops(x.size());
  return z;
}

/// r = b - A*x, the residual kernel of iterative refinement (computed at
/// the working precision of T).
template <typename T>
Vector<T> residual(const Matrix<T>& A, const Vector<T>& x, const Vector<T>& b) {
  return subtract(b, matvec(A, x));
}

/// Frobenius norm of A.
template <typename T>
double norm_frobenius(const Matrix<T>& A) {
  double ssq = 0.0;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) {
      const double a = detail::abs_as_double(A(i, j));
      ssq += a * a;
    }
  }
  return std::sqrt(ssq);
}

/// max_ij |A_ij - B_ij|
template <typename T>
double max_abs_diff(const Matrix<T>& A, const Matrix<T>& B) {
  expects(A.rows() == B.rows() && A.cols() == B.cols(), "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) {
      m = std::fmax(m, detail::abs_as_double(static_cast<T>(A(i, j) - B(i, j))));
    }
  }
  return m;
}

}  // namespace mpqls::linalg
