// LU factorization with partial pivoting, templated on scalar type so the
// classical mixed-precision baseline (Algorithm 1) can factor in half or
// single precision and refine in double — the paper's CPU/GPU analogue of
// the QSVT solver.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

/// Compact LU factorization P*A = L*U. L has a unit diagonal and is stored
/// in the strict lower triangle of `lu`; U occupies the upper triangle.
template <typename T>
struct LuFactorization {
  Matrix<T> lu;
  std::vector<std::size_t> perm;  ///< row i of PA is row perm[i] of A
  bool singular = false;
};

template <typename T>
LuFactorization<T> lu_factor(Matrix<T> A) {
  expects(A.rows() == A.cols(), "lu_factor: square matrix required");
  const std::size_t n = A.rows();
  LuFactorization<T> f;
  f.perm.resize(n);
  std::iota(f.perm.begin(), f.perm.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest |a_ik| on or below the diagonal.
    std::size_t piv = k;
    double best = detail::abs_as_double(A(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = detail::abs_as_double(A(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) {
      f.singular = true;
      break;
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(A(k, j), A(piv, j));
      std::swap(f.perm[k], f.perm[piv]);
    }
    const T pivot = A(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T lik = A(i, k) / pivot;
      A(i, k) = lik;
      for (std::size_t j = k + 1; j < n; ++j) A(i, j) -= lik * A(k, j);
    }
    count_flops((n - k - 1) * (2 * (n - k - 1) + 1));
  }
  f.lu = std::move(A);
  return f;
}

/// Solve A x = b using a precomputed factorization (forward + back
/// substitution, O(n^2) flops — this is what makes refinement iterations
/// cheap once the O(n^3) factorization exists).
template <typename T>
Vector<T> lu_solve(const LuFactorization<T>& f, const Vector<T>& b) {
  expects(!f.singular, "lu_solve: matrix is singular");
  const std::size_t n = f.lu.rows();
  expects(b.size() == n, "lu_solve: size mismatch");
  Vector<T> x(n);
  // Apply the permutation, then L y = Pb.
  for (std::size_t i = 0; i < n; ++i) x[i] = b[f.perm[i]];
  for (std::size_t i = 0; i < n; ++i) {
    T s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= f.lu(i, j) * x[j];
    x[i] = s;
  }
  // U x = y.
  for (std::size_t i = n; i-- > 0;) {
    T s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= f.lu(i, j) * x[j];
    x[i] = s / f.lu(i, i);
  }
  count_flops(2 * n * n);
  return x;
}

/// Convenience one-shot solve.
template <typename T>
Vector<T> lu_solve(const Matrix<T>& A, const Vector<T>& b) {
  return lu_solve(lu_factor(A), b);
}

/// Dense inverse via n solves (tests and small reference computations only).
template <typename T>
Matrix<T> lu_inverse(const Matrix<T>& A) {
  const std::size_t n = A.rows();
  const auto f = lu_factor(A);
  Matrix<T> inv(n, n);
  Vector<T> e(n, T{});
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = T{1};
    const auto col = lu_solve(f, e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = T{};
  }
  return inv;
}

}  // namespace mpqls::linalg
