// Restarted GMRES with Givens rotations, plus the Carson-Higham style
// GMRES-based iterative refinement (GMRES-IR): refinement whose correction
// solve is GMRES preconditioned by low-precision LU factors. GMRES-IR
// extends the u_l * kappa < 1 frontier of plain refinement — the modern
// classical mixed-precision baseline to put next to the paper's quantum
// variant.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

struct GmresOptions {
  int restart = 30;
  int max_iterations = 500;     ///< total Krylov steps across restarts
  double tolerance = 1e-12;     ///< on ||b - Ax|| / ||b||
};

struct GmresResult {
  Vector<double> x;
  double relative_residual = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Solve A x = b with restarted GMRES. `preconditioner` (optional) applies
/// M^{-1} to a vector (left preconditioning).
GmresResult gmres_solve(const Matrix<double>& A, const Vector<double>& b,
                        const GmresOptions& opts = {},
                        const std::function<Vector<double>(const Vector<double>&)>*
                            preconditioner = nullptr);

struct GmresIrResult {
  Vector<double> x;
  std::vector<double> scaled_residuals;
  int refinement_iterations = 0;
  int total_gmres_iterations = 0;
  bool converged = false;
};

/// GMRES-IR: factor A once in LowT; refine in double with GMRES applied to
/// the LU-preconditioned system for each correction solve.
template <typename LowT>
GmresIrResult gmres_iterative_refinement(const Matrix<double>& A, const Vector<double>& b,
                                         double target_scaled_residual = 1e-13,
                                         int max_refinements = 40) {
  const std::size_t n = A.rows();
  expects(n == A.cols() && n == b.size(), "gmres_ir: dimension mismatch");

  const auto lu_low = lu_factor(convert_matrix<LowT>(A));
  expects(!lu_low.singular, "gmres_ir: singular in low precision");
  // Normalize before dropping to LowT: late-refinement residual vectors
  // (1e-7 and below) underflow half precision otherwise.
  const std::function<Vector<double>(const Vector<double>&)> apply_minv =
      [&lu_low](const Vector<double>& v) {
        const double s = norm_inf(v);
        if (s == 0.0) return v;
        Vector<double> scaled = v;
        for (auto& x : scaled) x /= s;
        auto out = convert_vector<double>(lu_solve(lu_low, convert_vector<LowT>(scaled)));
        for (auto& x : out) x *= s;
        return out;
      };

  GmresIrResult res;
  res.x.assign(n, 0.0);
  const double norm_b = nrm2(b);
  expects(norm_b > 0.0, "gmres_ir: zero right-hand side");

  Vector<double> r = b;
  double omega = 1.0;
  res.scaled_residuals.push_back(omega);
  for (int it = 0; it < max_refinements; ++it) {
    if (omega <= target_scaled_residual) {
      res.converged = true;
      break;
    }
    // Correction solve: GMRES on A e = r, preconditioned by the LU factors
    // (a handful of Krylov steps suffices even when u_l * kappa > 1).
    GmresOptions gopts;
    gopts.restart = 20;
    gopts.max_iterations = 40;
    gopts.tolerance = 1e-8;
    const auto sol = gmres_solve(A, r, gopts, &apply_minv);
    res.total_gmres_iterations += sol.iterations;
    for (std::size_t i = 0; i < n; ++i) res.x[i] += sol.x[i];
    res.refinement_iterations = it + 1;

    r = residual(A, res.x, b);
    const double omega_new = nrm2(r) / norm_b;
    res.scaled_residuals.push_back(omega_new);
    if (omega_new >= omega && omega_new > target_scaled_residual) break;
    omega = omega_new;
  }
  res.converged = res.converged || omega <= target_scaled_residual;
  return res;
}

}  // namespace mpqls::linalg
