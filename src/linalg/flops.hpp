// Thread-local flop ledger. Benchmarks that reproduce the classical-cost
// columns of Table II open a FlopScope around a phase; the BLAS kernels
// then report into it. When no scope is active the counting hook is a
// single branch, so the overhead in normal runs is negligible.
#pragma once

#include <cstdint>

namespace mpqls::linalg {

namespace detail {
inline thread_local std::uint64_t* active_flop_sink = nullptr;
}

/// Record `n` floating-point operations in the enclosing FlopScope, if any.
inline void count_flops(std::uint64_t n) {
  if (detail::active_flop_sink != nullptr) *detail::active_flop_sink += n;
}

/// RAII measurement window. Nested scopes each observe the flops issued
/// while they are innermost-active plus those of scopes nested inside them
/// (inner counts are added to the outer scope on destruction).
class FlopScope {
 public:
  FlopScope() : parent_(detail::active_flop_sink) { detail::active_flop_sink = &count_; }
  ~FlopScope() {
    detail::active_flop_sink = parent_;
    if (parent_ != nullptr) *parent_ += count_;
  }
  FlopScope(const FlopScope&) = delete;
  FlopScope& operator=(const FlopScope&) = delete;

  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t* parent_;
};

}  // namespace mpqls::linalg
