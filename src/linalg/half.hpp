// Software IEEE 754 binary16 ("half") arithmetic. Used as the extreme
// low-precision point u_l ~ 9.8e-4 in the classical mixed-precision
// iterative-refinement baseline (Algorithm 1 of the paper). Storage is a
// 16-bit pattern; arithmetic routes through float with round-to-nearest-even
// on conversion, which is exactly the behaviour of hardware fp16 units for
// individually rounded operations.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace mpqls::linalg {

class half {
 public:
  half() = default;
  half(float f) : bits_(float_to_bits(f)) {}           // NOLINT(google-explicit-constructor)
  half(double d) : half(static_cast<float>(d)) {}      // NOLINT(google-explicit-constructor)
  half(int i) : half(static_cast<float>(i)) {}         // NOLINT(google-explicit-constructor)

  operator float() const { return bits_to_float(bits_); }   // NOLINT
  operator double() const { return bits_to_float(bits_); }  // NOLINT

  static half from_bits(std::uint16_t b) {
    half h;
    h.bits_ = b;
    return h;
  }
  std::uint16_t bits() const { return bits_; }

  half& operator+=(half o) { *this = half(float(*this) + float(o)); return *this; }
  half& operator-=(half o) { *this = half(float(*this) - float(o)); return *this; }
  half& operator*=(half o) { *this = half(float(*this) * float(o)); return *this; }
  half& operator/=(half o) { *this = half(float(*this) / float(o)); return *this; }

  friend half operator+(half a, half b) { return half(float(a) + float(b)); }
  friend half operator-(half a, half b) { return half(float(a) - float(b)); }
  friend half operator*(half a, half b) { return half(float(a) * float(b)); }
  friend half operator/(half a, half b) { return half(float(a) / float(b)); }
  friend half operator-(half a) { return from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u)); }

  friend bool operator==(half a, half b) { return float(a) == float(b); }
  friend bool operator!=(half a, half b) { return float(a) != float(b); }
  friend bool operator<(half a, half b) { return float(a) < float(b); }
  friend bool operator>(half a, half b) { return float(a) > float(b); }
  friend bool operator<=(half a, half b) { return float(a) <= float(b); }
  friend bool operator>=(half a, half b) { return float(a) >= float(b); }

 private:
  // Round-to-nearest-even float -> binary16, handling subnormals, overflow
  // to infinity, and NaN payload preservation (quieting).
  static std::uint16_t float_to_bits(float f) {
    std::uint32_t x;
    static_assert(sizeof(float) == 4);
    __builtin_memcpy(&x, &f, 4);
    const std::uint32_t sign = (x >> 16) & 0x8000u;
    x &= 0x7FFFFFFFu;
    if (x >= 0x7F800000u) {  // Inf or NaN
      const std::uint32_t mant = x & 0x007FFFFFu;
      return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x0200u | (mant >> 13) : 0));
    }
    if (x >= 0x477FF000u) {  // overflows half range after rounding
      return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    if (x < 0x38800000u) {  // subnormal half (or zero)
      if (x < 0x33000000u) return static_cast<std::uint16_t>(sign);  // underflow to 0
      // Result is round(v * 2^24): with v = mant * 2^(e_f - 150) and the
      // implicit bit restored, that is mant >> (126 - e_f), e_f = biased
      // float exponent. The flush threshold above bounds the shift by 25.
      const int shift = 126 - static_cast<int>(x >> 23);
      std::uint32_t mant = (x & 0x007FFFFFu) | 0x00800000u;
      const std::uint32_t lsb = 1u << shift;
      const std::uint32_t round = (lsb >> 1);
      const std::uint32_t rem = mant & (lsb - 1);
      mant >>= shift;
      if (rem > round || (rem == round && (mant & 1u))) ++mant;
      return static_cast<std::uint16_t>(sign | mant);
    }
    // Normalized: re-bias exponent from 127 to 15, round mantissa 23 -> 10.
    std::uint32_t half_val = sign | (((x >> 23) - 112) << 10) | ((x & 0x007FFFFFu) >> 13);
    const std::uint32_t rem = x & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_val & 1u))) ++half_val;
    return static_cast<std::uint16_t>(half_val);
  }

  static float bits_to_float(std::uint16_t h) {
    const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    const std::uint32_t mant = h & 0x3FFu;
    std::uint32_t x;
    if (exp == 0) {
      if (mant == 0) {
        x = sign;  // +-0
      } else {
        // Subnormal: normalize.
        int e = -1;
        std::uint32_t m = mant;
        do {
          ++e;
          m <<= 1;
        } while ((m & 0x400u) == 0);
        x = sign | ((112 - e) << 23) | ((m & 0x3FFu) << 13);
      }
    } else if (exp == 0x1Fu) {
      x = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
    } else {
      x = sign | ((exp + 112) << 23) | (mant << 13);
    }
    float f;
    __builtin_memcpy(&f, &x, 4);
    return f;
  }

  std::uint16_t bits_ = 0;
};

inline half abs(half h) { return half(std::fabs(float(h))); }
inline half sqrt(half h) { return half(std::sqrt(float(h))); }
inline bool isfinite(half h) { return std::isfinite(float(h)); }

}  // namespace mpqls::linalg

namespace std {
template <>
struct numeric_limits<mpqls::linalg::half> {
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr int digits = 11;  // implicit bit + 10 mantissa bits
  static mpqls::linalg::half epsilon() { return mpqls::linalg::half(9.765625e-4f); }  // 2^-10
  static mpqls::linalg::half min() { return mpqls::linalg::half(6.103515625e-5f); }   // 2^-14
  static mpqls::linalg::half max() { return mpqls::linalg::half(65504.0f); }
  static mpqls::linalg::half infinity() {
    return mpqls::linalg::half::from_bits(0x7C00u);
  }
  static mpqls::linalg::half quiet_NaN() {
    return mpqls::linalg::half::from_bits(0x7E00u);
  }
};
}  // namespace std
