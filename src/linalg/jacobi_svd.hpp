// One-sided Jacobi (Hestenes) SVD for real matrices. High relative accuracy
// on small singular values, which matters here: the QSVT polynomial acts on
// the singular values near 1/kappa, so the reference decomposition must
// resolve them well.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

struct Svd {
  Matrix<double> U;        ///< m x n, orthonormal columns
  Vector<double> sigma;    ///< descending, non-negative
  Matrix<double> V;        ///< n x n orthogonal
  int sweeps = 0;
};

/// A = U diag(sigma) V^T for an m x n real matrix with m >= n.
inline Svd jacobi_svd(Matrix<double> A, double tol = 1e-15, int max_sweeps = 60) {
  const std::size_t m = A.rows();
  const std::size_t n = A.cols();
  expects(m >= n, "jacobi_svd: requires rows >= cols");

  Matrix<double> V = Matrix<double>::identity(n);
  Svd out;

  // One-sided Jacobi: orthogonalize pairs of columns of A by plane
  // rotations applied on the right; V accumulates the rotations.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    out.sweeps = sweep + 1;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += A(i, p) * A(i, p);
          aqq += A(i, q) * A(i, q);
          apq += A(i, p) * A(i, q);
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) continue;
        converged = false;
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t i = 0; i < m; ++i) {
          const double aip = A(i, p);
          const double aiq = A(i, q);
          A(i, p) = c * aip - s * aiq;
          A(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = V(i, p);
          const double viq = V(i, q);
          V(i, p) = c * vip - s * viq;
          V(i, q) = s * vip + c * viq;
        }
      }
    }
    if (converged) break;
  }

  // Column norms are the singular values; normalize columns into U.
  Vector<double> sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += A(i, j) * A(i, j);
    sigma[j] = std::sqrt(s);
  }
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&sigma](std::size_t a, std::size_t b) { return sigma[a] > sigma[b]; });

  out.U = Matrix<double>(m, n);
  out.V = Matrix<double>(n, n);
  out.sigma.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t k = idx[j];
    out.sigma[j] = sigma[k];
    const double inv = (sigma[k] > 0.0) ? 1.0 / sigma[k] : 0.0;
    for (std::size_t i = 0; i < m; ++i) out.U(i, j) = A(i, k) * inv;
    for (std::size_t i = 0; i < n; ++i) out.V(i, j) = V(i, k);
  }
  return out;
}

/// Spectral norm ||A||_2 (largest singular value).
inline double norm2(const Matrix<double>& A) {
  if (A.rows() >= A.cols()) return jacobi_svd(A).sigma.front();
  Matrix<double> At(A.cols(), A.rows());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) At(j, i) = A(i, j);
  }
  return jacobi_svd(At).sigma.front();
}

/// 2-norm condition number sigma_max / sigma_min.
inline double cond2(const Matrix<double>& A) {
  const auto svd = jacobi_svd(A);
  expects(svd.sigma.back() > 0.0, "cond2: singular matrix");
  return svd.sigma.front() / svd.sigma.back();
}

}  // namespace mpqls::linalg
