// Householder QR factorization (real scalars). Used for least-squares
// solves and to generate Haar-distributed random orthogonal matrices for
// the prescribed-condition-number test problems of Section IV.
#pragma once

#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

/// Householder QR of an m x n matrix with m >= n. Reflectors are stored
/// below the diagonal of `qr`; R occupies the upper triangle; `tau` holds
/// the reflector scalars.
template <typename T>
struct QrFactorization {
  Matrix<T> qr;
  Vector<T> tau;
};

template <typename T>
QrFactorization<T> qr_factor(Matrix<T> A) {
  const std::size_t m = A.rows();
  const std::size_t n = A.cols();
  expects(m >= n, "qr_factor: requires rows >= cols");
  QrFactorization<T> f;
  f.tau.assign(n, T{});

  for (std::size_t k = 0; k < n; ++k) {
    // Norm of the column below (and including) the diagonal.
    double ssq = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      const double v = static_cast<double>(A(i, k));
      ssq += v * v;
    }
    const double alpha = std::sqrt(ssq);
    if (alpha == 0.0) continue;
    const double akk = static_cast<double>(A(k, k));
    const double beta = (akk >= 0.0) ? -alpha : alpha;
    // v = x - beta*e1, normalized so v_k = 1.
    const double vk = akk - beta;
    for (std::size_t i = k + 1; i < m; ++i) A(i, k) = static_cast<T>(static_cast<double>(A(i, k)) / vk);
    f.tau[k] = static_cast<T>((beta - akk) / beta);
    A(k, k) = static_cast<T>(beta);
    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = static_cast<double>(A(k, j));
      for (std::size_t i = k + 1; i < m; ++i) {
        s += static_cast<double>(A(i, k)) * static_cast<double>(A(i, j));
      }
      s *= static_cast<double>(f.tau[k]);
      A(k, j) = static_cast<T>(static_cast<double>(A(k, j)) - s);
      for (std::size_t i = k + 1; i < m; ++i) {
        A(i, j) = static_cast<T>(static_cast<double>(A(i, j)) -
                                 s * static_cast<double>(A(i, k)));
      }
    }
    count_flops(4 * (m - k) * (n - k));
  }
  f.qr = std::move(A);
  return f;
}

/// Form the thin orthogonal factor Q (m x n).
template <typename T>
Matrix<T> qr_q(const QrFactorization<T>& f) {
  const std::size_t m = f.qr.rows();
  const std::size_t n = f.qr.cols();
  Matrix<T> Q(m, n);
  for (std::size_t j = 0; j < n; ++j) Q(j, j) = T{1};
  // Accumulate reflectors in reverse order: Q = H_0 H_1 ... H_{n-1} I.
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = static_cast<double>(Q(k, j));
      for (std::size_t i = k + 1; i < m; ++i) {
        s += static_cast<double>(f.qr(i, k)) * static_cast<double>(Q(i, j));
      }
      s *= static_cast<double>(f.tau[k]);
      Q(k, j) = static_cast<T>(static_cast<double>(Q(k, j)) - s);
      for (std::size_t i = k + 1; i < m; ++i) {
        Q(i, j) = static_cast<T>(static_cast<double>(Q(i, j)) -
                                 s * static_cast<double>(f.qr(i, k)));
      }
    }
  }
  return Q;
}

/// Least-squares solve min ||A x - b||_2 for m >= n via QR.
template <typename T>
Vector<T> qr_solve_ls(const Matrix<T>& A, const Vector<T>& b) {
  const std::size_t m = A.rows();
  const std::size_t n = A.cols();
  expects(b.size() == m, "qr_solve_ls: size mismatch");
  auto f = qr_factor(A);
  // y = Q^T b, applied reflector by reflector.
  Vector<T> y = b;
  for (std::size_t k = 0; k < n; ++k) {
    double s = static_cast<double>(y[k]);
    for (std::size_t i = k + 1; i < m; ++i) {
      s += static_cast<double>(f.qr(i, k)) * static_cast<double>(y[i]);
    }
    s *= static_cast<double>(f.tau[k]);
    y[k] = static_cast<T>(static_cast<double>(y[k]) - s);
    for (std::size_t i = k + 1; i < m; ++i) {
      y[i] = static_cast<T>(static_cast<double>(y[i]) - s * static_cast<double>(f.qr(i, k)));
    }
  }
  // Back-substitute R x = y[0..n).
  Vector<T> x(n);
  for (std::size_t i = n; i-- > 0;) {
    T s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= f.qr(i, j) * x[j];
    x[i] = s / f.qr(i, i);
  }
  return x;
}

}  // namespace mpqls::linalg
