#include "linalg/gmres.hpp"

namespace mpqls::linalg {

GmresResult gmres_solve(const Matrix<double>& A, const Vector<double>& b,
                        const GmresOptions& opts,
                        const std::function<Vector<double>(const Vector<double>&)>*
                            preconditioner) {
  const std::size_t n = A.rows();
  expects(n == A.cols() && n == b.size(), "gmres: dimension mismatch");
  const int m = opts.restart;

  auto precond = [&](Vector<double> v) {
    return (preconditioner != nullptr) ? (*preconditioner)(v) : v;
  };

  GmresResult res;
  res.x.assign(n, 0.0);
  const Vector<double> pb = precond(b);
  const double norm_pb = nrm2(pb);
  if (norm_pb == 0.0) {
    res.converged = true;
    return res;
  }

  while (res.iterations < opts.max_iterations) {
    // (Preconditioned) residual and restart basis.
    Vector<double> r = precond(residual(A, res.x, b));
    const double beta = nrm2(r);
    res.relative_residual = beta / norm_pb;
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      return res;
    }

    // Arnoldi with modified Gram-Schmidt; H stored (m+1) x m.
    std::vector<Vector<double>> V;
    V.reserve(m + 1);
    Vector<double> v0 = r;
    for (auto& x : v0) x /= beta;
    V.push_back(std::move(v0));
    Matrix<double> H(m + 1, m);
    // Givens rotation pairs and the rotated rhs g.
    std::vector<double> cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0);
    g[0] = beta;

    int k = 0;
    for (; k < m && res.iterations < opts.max_iterations; ++k) {
      ++res.iterations;
      Vector<double> w = precond(matvec(A, V[k]));
      for (int i = 0; i <= k; ++i) {
        H(i, k) = dot(V[i], w);
        axpy(-H(i, k), V[i], w);
      }
      H(k + 1, k) = nrm2(w);
      // "Happy breakdown": the Krylov space is invariant and the exact
      // solution lies in the current basis.
      const bool breakdown = H(k + 1, k) <= 1e-300;
      if (!breakdown) {
        for (auto& x : w) x /= H(k + 1, k);
        V.push_back(std::move(w));
      }
      // Apply previous rotations to the new column, then a new rotation.
      for (int i = 0; i < k; ++i) {
        const double t = cs[i] * H(i, k) + sn[i] * H(i + 1, k);
        H(i + 1, k) = -sn[i] * H(i, k) + cs[i] * H(i + 1, k);
        H(i, k) = t;
      }
      const double denom = std::hypot(H(k, k), H(k + 1, k));
      cs[k] = H(k, k) / denom;
      sn[k] = H(k + 1, k) / denom;
      H(k, k) = denom;
      H(k + 1, k) = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] *= cs[k];
      res.relative_residual = std::fabs(g[k + 1]) / norm_pb;
      if (res.relative_residual <= opts.tolerance || breakdown) {
        ++k;  // include this column in the back-substitution
        break;
      }
    }

    // Back-substitute the k x k triangular system and update x.
    Vector<double> y(k, 0.0);
    for (int i = k - 1; i >= 0; --i) {
      double s = g[i];
      for (int j = i + 1; j < k; ++j) s -= H(i, j) * y[j];
      y[i] = s / H(i, i);
    }
    for (int i = 0; i < k; ++i) axpy(y[i], V[i], res.x);

    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      return res;
    }
    if (k == 0) break;  // no progress possible
  }
  // Final true residual.
  res.relative_residual = nrm2(precond(residual(A, res.x, b))) / norm_pb;
  res.converged = res.relative_residual <= opts.tolerance;
  return res;
}

}  // namespace mpqls::linalg
