// Double-double ("dd128") arithmetic: an unevaluated sum of two doubles
// giving ~106 bits (~32 decimal digits) of precision. Used as the extra-high
// precision u_r = u^2 in the three-precision Carson-Higham refinement
// variant and to compute reference solutions/residuals beyond double
// precision. Algorithms follow Dekker (1971) and Knuth TAOCP vol. 2;
// products rely on FMA (enabled with -mfma in the build flags).
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace mpqls::linalg {

class dd128 {
 public:
  dd128() = default;
  dd128(double x) : hi_(x), lo_(0.0) {}  // NOLINT(google-explicit-constructor)
  dd128(double hi, double lo) : hi_(hi), lo_(lo) {}
  dd128(int x) : hi_(x), lo_(0.0) {}     // NOLINT(google-explicit-constructor)

  double hi() const { return hi_; }
  double lo() const { return lo_; }
  explicit operator double() const { return hi_; }
  explicit operator float() const { return static_cast<float>(hi_); }

  friend dd128 operator+(dd128 a, dd128 b) {
    auto [s, e] = two_sum(a.hi_, b.hi_);
    e += a.lo_ + b.lo_;
    return quick_renorm(s, e);
  }
  friend dd128 operator-(dd128 a, dd128 b) { return a + (-b); }
  friend dd128 operator-(dd128 a) { return dd128(-a.hi_, -a.lo_); }

  friend dd128 operator*(dd128 a, dd128 b) {
    auto [p, e] = two_prod(a.hi_, b.hi_);
    e += a.hi_ * b.lo_ + a.lo_ * b.hi_;
    return quick_renorm(p, e);
  }

  friend dd128 operator/(dd128 a, dd128 b) {
    // One Newton step on the double quotient recovers full dd accuracy.
    const double q1 = a.hi_ / b.hi_;
    dd128 r = a - dd128(q1) * b;
    const double q2 = r.hi_ / b.hi_;
    r = r - dd128(q2) * b;
    const double q3 = r.hi_ / b.hi_;
    auto [s, e] = two_sum(q1, q2);
    return quick_renorm(s, e + q3);
  }

  dd128& operator+=(dd128 o) { *this = *this + o; return *this; }
  dd128& operator-=(dd128 o) { *this = *this - o; return *this; }
  dd128& operator*=(dd128 o) { *this = *this * o; return *this; }
  dd128& operator/=(dd128 o) { *this = *this / o; return *this; }

  friend bool operator==(dd128 a, dd128 b) { return a.hi_ == b.hi_ && a.lo_ == b.lo_; }
  friend bool operator!=(dd128 a, dd128 b) { return !(a == b); }
  friend bool operator<(dd128 a, dd128 b) {
    return a.hi_ < b.hi_ || (a.hi_ == b.hi_ && a.lo_ < b.lo_);
  }
  friend bool operator>(dd128 a, dd128 b) { return b < a; }
  friend bool operator<=(dd128 a, dd128 b) { return !(b < a); }
  friend bool operator>=(dd128 a, dd128 b) { return !(a < b); }

  /// Decimal string with ~31 significant digits (for diagnostics).
  std::string to_string() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g%+.17g", hi_, lo_);
    return buf;
  }

 private:
  // Error-free transformation: s + e == a + b exactly.
  static std::pair<double, double> two_sum(double a, double b) {
    const double s = a + b;
    const double bb = s - a;
    const double e = (a - (s - bb)) + (b - bb);
    return {s, e};
  }
  // Error-free product via FMA: p + e == a * b exactly.
  static std::pair<double, double> two_prod(double a, double b) {
    const double p = a * b;
    const double e = std::fma(a, b, -p);
    return {p, e};
  }
  static dd128 quick_renorm(double s, double e) {
    const double hi = s + e;
    const double lo = e - (hi - s);
    return dd128(hi, lo);
  }

  double hi_ = 0.0;
  double lo_ = 0.0;
};

inline dd128 abs(dd128 x) { return (x.hi() < 0.0 || (x.hi() == 0.0 && x.lo() < 0.0)) ? -x : x; }

inline dd128 sqrt(dd128 x) {
  if (x.hi() <= 0.0) return dd128(std::sqrt(x.hi()));
  // Newton iteration on y = 1/sqrt(x), seeded from double precision.
  const double y0 = 1.0 / std::sqrt(x.hi());
  dd128 y(y0);
  const dd128 half_dd(0.5);
  // Two iterations take the seed's 53 bits to > 106 bits.
  for (int it = 0; it < 2; ++it) {
    y = y + y * (dd128(1.0) - x * y * y) * half_dd;
  }
  return x * y;
}

inline bool isfinite(dd128 x) { return std::isfinite(x.hi()); }

}  // namespace mpqls::linalg

namespace std {
template <>
struct numeric_limits<mpqls::linalg::dd128> {
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr int digits = 106;
  static mpqls::linalg::dd128 epsilon() { return {4.93038065763132e-32}; }  // 2^-104
  static mpqls::linalg::dd128 min() { return {numeric_limits<double>::min()}; }
  static mpqls::linalg::dd128 max() { return {numeric_limits<double>::max()}; }
};
}  // namespace std
