// Cyclic Jacobi eigensolver for real symmetric matrices. Quadratically
// convergent and accurate to working precision — exactly what is needed to
// build e^{iAt} for the HHL baseline and reference spectra in tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

struct SymmetricEig {
  Vector<double> values;   ///< ascending
  Matrix<double> vectors;  ///< column j is the eigenvector of values[j]
  int sweeps = 0;
};

/// Eigendecomposition A = V diag(values) V^T of a real symmetric matrix.
/// `tol` bounds the off-diagonal Frobenius mass relative to ||A||_F.
inline SymmetricEig jacobi_eigensymmetric(Matrix<double> A, double tol = 1e-14,
                                          int max_sweeps = 60) {
  expects(A.rows() == A.cols(), "jacobi_eigensymmetric: square matrix required");
  const std::size_t n = A.rows();
  Matrix<double> V = Matrix<double>::identity(n);

  auto off_norm = [&A, n] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += 2.0 * A(i, j) * A(i, j);
    }
    return std::sqrt(s);
  };
  double a_norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a_norm += A(i, j) * A(i, j);
  }
  a_norm = std::sqrt(a_norm);
  if (a_norm == 0.0) a_norm = 1.0;

  SymmetricEig out;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * a_norm) break;
    out.sweeps = sweep + 1;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = A(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        // Symmetric Schur rotation annihilating A(p,q).
        const double theta = (A(q, q) - A(p, p)) / (2.0 * apq);
        const double t = std::copysign(1.0, theta) /
                         (std::fabs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = A(k, p);
          const double akq = A(k, q);
          A(k, p) = c * akp - s * akq;
          A(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = A(p, k);
          const double aqk = A(q, k);
          A(p, k) = c * apk - s * aqk;
          A(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = V(k, p);
          const double vkq = V(k, q);
          V(k, p) = c * vkp - s * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending, permuting eigenvectors to match.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&A](std::size_t a, std::size_t b) { return A(a, a) < A(b, b); });
  out.values.resize(n);
  out.vectors = Matrix<double>(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = A(idx[j], idx[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = V(i, idx[j]);
  }
  return out;
}

}  // namespace mpqls::linalg
