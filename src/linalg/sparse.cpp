#include "linalg/sparse.hpp"

#include <cmath>

namespace mpqls::linalg {

CsrMatrix CsrMatrix::from_dense(const Matrix<double>& A, double tol) {
  CsrMatrix m;
  m.cols_count_ = A.cols();
  m.row_ptr_.reserve(A.rows() + 1);
  m.row_ptr_.push_back(0);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) {
      if (std::fabs(A(i, j)) > tol) {
        m.col_idx_.push_back(j);
        m.values_.push_back(A(i, j));
      }
    }
    m.row_ptr_.push_back(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::dirichlet_laplacian(std::size_t n) {
  expects(n >= 2, "dirichlet_laplacian: n >= 2 required");
  CsrMatrix m;
  m.cols_count_ = n;
  m.row_ptr_.reserve(n + 1);
  m.row_ptr_.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) {
      m.col_idx_.push_back(i - 1);
      m.values_.push_back(-1.0);
    }
    m.col_idx_.push_back(i);
    m.values_.push_back(2.0);
    if (i + 1 < n) {
      m.col_idx_.push_back(i + 1);
      m.values_.push_back(-1.0);
    }
    m.row_ptr_.push_back(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::dirichlet_laplacian_2d(std::size_t nx, std::size_t ny) {
  expects(nx >= 2 && ny >= 2, "dirichlet_laplacian_2d: grid >= 2x2 required");
  const std::size_t n = nx * ny;
  CsrMatrix m;
  m.cols_count_ = n;
  m.row_ptr_.reserve(n + 1);
  m.row_ptr_.push_back(0);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const std::size_t i = y * nx + x;
      // Row entries in ascending column order: (y-1), (x-1), self, (x+1), (y+1).
      if (y > 0) {
        m.col_idx_.push_back(i - nx);
        m.values_.push_back(-1.0);
      }
      if (x > 0) {
        m.col_idx_.push_back(i - 1);
        m.values_.push_back(-1.0);
      }
      m.col_idx_.push_back(i);
      m.values_.push_back(4.0);
      if (x + 1 < nx) {
        m.col_idx_.push_back(i + 1);
        m.values_.push_back(-1.0);
      }
      if (y + 1 < ny) {
        m.col_idx_.push_back(i + nx);
        m.values_.push_back(-1.0);
      }
      m.row_ptr_.push_back(m.col_idx_.size());
    }
  }
  return m;
}

Vector<double> CsrMatrix::multiply(const Vector<double>& x) const {
  expects(x.size() == cols_count_, "csr multiply: size mismatch");
  Vector<double> y(rows(), 0.0);
  const std::int64_t nrows = static_cast<std::int64_t>(rows());
#pragma omp parallel for if (nrows >= 4096)
  for (std::int64_t i = 0; i < nrows; ++i) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[static_cast<std::size_t>(i)] = s;
  }
  count_flops(2 * nonzeros());
  return y;
}

Matrix<double> CsrMatrix::to_dense() const {
  Matrix<double> A(rows(), cols());
  for (std::size_t i = 0; i < rows(); ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      A(i, col_idx_[k]) = values_[k];
    }
  }
  return A;
}

CgResult cg_solve(const CsrMatrix& A, const Vector<double>& b, const CgOptions& opts) {
  const std::size_t n = b.size();
  expects(A.rows() == n && A.cols() == n, "cg: dimension mismatch");
  CgResult res;
  res.x.assign(n, 0.0);
  const double norm_b = nrm2(b);
  if (norm_b == 0.0) {
    res.converged = true;
    return res;
  }
  Vector<double> r = b;          // b - A*0
  Vector<double> p = r;
  double rs = dot(r, r);
  for (int it = 0; it < opts.max_iterations; ++it) {
    const auto ap = A.multiply(p);
    const double alpha = rs / dot(p, ap);
    axpy(alpha, p, res.x);
    axpy(-alpha, ap, r);
    const double rs_new = dot(r, r);
    res.iterations = it + 1;
    res.relative_residual = std::sqrt(rs_new) / norm_b;
    if (res.relative_residual <= opts.tolerance) {
      res.converged = true;
      break;
    }
    const double beta = rs_new / rs;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs = rs_new;
  }
  return res;
}

}  // namespace mpqls::linalg
