// Classical mixed-precision iterative refinement (Algorithm 1 of the
// paper; Wilkinson 1963, Carson & Higham 2018). The solver factorizes once
// in a low precision u_l, then refines in a working precision u — the
// CPU/GPU pattern the paper transplants to the CPU/QPU setting.
#pragma once

#include <cstddef>
#include <vector>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::linalg {

struct ClassicalIrOptions {
  double target_scaled_residual = 1e-12;  ///< stop when ||b-Ax||/||b|| <= this
  int max_iterations = 50;
};

template <typename WorkT>
struct ClassicalIrResult {
  Vector<WorkT> x;
  std::vector<double> scaled_residuals;  ///< omega_i after each solve (index 0 = first solve)
  int iterations = 0;                    ///< refinement iterations (excludes the first solve)
  bool converged = false;
};

/// Two-precision refinement: factor and solve in LowT, residual and update
/// in WorkT. Optionally compute residuals in an even higher precision ResT
/// (three-precision Carson-Higham variant; defaults to ResT = WorkT).
template <typename WorkT, typename LowT, typename ResT = WorkT>
ClassicalIrResult<WorkT> classical_iterative_refinement(const Matrix<WorkT>& A,
                                                        const Vector<WorkT>& b,
                                                        const ClassicalIrOptions& opts = {}) {
  expects(A.rows() == A.cols(), "classical IR: square matrix required");
  expects(b.size() == A.rows(), "classical IR: size mismatch");
  const std::size_t n = A.rows();

  // Step 0: factor + solve at precision u_l.
  const Matrix<LowT> A_low = convert_matrix<LowT>(A);
  const auto lu_low = lu_factor(A_low);
  expects(!lu_low.singular, "classical IR: matrix singular in low precision");

  ClassicalIrResult<WorkT> res;
  res.x = convert_vector<WorkT>(lu_solve(lu_low, convert_vector<LowT>(b)));

  const Matrix<ResT> A_res = convert_matrix<ResT>(A);
  const Vector<ResT> b_res = convert_vector<ResT>(b);
  const double norm_b = nrm2(b_res);
  expects(norm_b > 0.0, "classical IR: zero right-hand side");

  auto scaled_residual = [&](const Vector<WorkT>& x, Vector<ResT>& r_out) {
    r_out = residual(A_res, convert_vector<ResT>(x), b_res);
    return nrm2(r_out) / norm_b;
  };

  Vector<ResT> r(n);
  double omega = scaled_residual(res.x, r);
  res.scaled_residuals.push_back(omega);

  for (int it = 0; it < opts.max_iterations; ++it) {
    if (omega <= opts.target_scaled_residual) {
      res.converged = true;
      break;
    }
    // Solve A e = r at precision u_l, reusing the factorization. The
    // residual is normalized first so its entries stay inside the dynamic
    // range of LowT (essential for half precision; this mirrors the
    // normalization quantum state preparation imposes, Remark 2 of the
    // paper), and the correction is rescaled after the solve.
    const double r_norm = nrm2(r);
    Vector<ResT> r_scaled = r;
    for (auto& v : r_scaled) v /= static_cast<ResT>(r_norm);
    const Vector<LowT> r_low = convert_vector<LowT>(r_scaled);
    Vector<WorkT> e = convert_vector<WorkT>(lu_solve(lu_low, r_low));
    // Update at working precision u.
    for (std::size_t i = 0; i < n; ++i) res.x[i] += static_cast<WorkT>(r_norm) * e[i];
    res.iterations = it + 1;

    const double omega_new = scaled_residual(res.x, r);
    res.scaled_residuals.push_back(omega_new);
    // Divergence / stagnation guard: stop if no progress (Higham 1996
    // recommends abandoning refinement when the residual stops decreasing).
    if (omega_new >= omega && omega_new > opts.target_scaled_residual) break;
    omega = omega_new;
  }
  res.converged = res.converged || omega <= opts.target_scaled_residual;
  return res;
}

}  // namespace mpqls::linalg
