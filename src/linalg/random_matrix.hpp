// Generators for the test problems of Section IV: random matrices with a
// prescribed 2-norm condition number (via U diag(sigma) V^T with Haar
// orthogonal factors) and the 1-D Poisson matrix of Section III-C4.
#pragma once

#include <cmath>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace mpqls::linalg {

/// m x n matrix of i.i.d. standard normals.
inline Matrix<double> random_gaussian(Xoshiro256& rng, std::size_t m, std::size_t n) {
  Matrix<double> A(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) A(i, j) = rng.normal();
  }
  return A;
}

/// Haar-distributed random orthogonal matrix: QR of a Gaussian matrix with
/// the sign convention R_ii > 0 (Mezzadri, Notices AMS 2007).
inline Matrix<double> haar_orthogonal(Xoshiro256& rng, std::size_t n) {
  auto f = qr_factor(random_gaussian(rng, n, n));
  Matrix<double> Q = qr_q(f);
  for (std::size_t j = 0; j < n; ++j) {
    if (f.qr(j, j) < 0.0) {
      for (std::size_t i = 0; i < n; ++i) Q(i, j) = -Q(i, j);
    }
  }
  return Q;
}

enum class SigmaSpacing {
  kLogarithmic,  ///< sigma_k log-spaced in [1/kappa, 1] (default; hardest)
  kLinear,       ///< sigma_k linearly spaced in [1/kappa, 1]
  kClustered,    ///< one small singular value 1/kappa, the rest at 1
};

/// Random nonsingular matrix with ||A||_2 = 1 and cond_2(A) = kappa.
inline Matrix<double> random_with_cond(Xoshiro256& rng, std::size_t n, double kappa,
                                       SigmaSpacing spacing = SigmaSpacing::kLogarithmic) {
  expects(kappa >= 1.0, "random_with_cond: kappa must be >= 1");
  Vector<double> sigma(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double t = (n == 1) ? 0.0 : static_cast<double>(k) / static_cast<double>(n - 1);
    switch (spacing) {
      case SigmaSpacing::kLogarithmic:
        sigma[k] = std::pow(kappa, -t);
        break;
      case SigmaSpacing::kLinear:
        sigma[k] = 1.0 - t * (1.0 - 1.0 / kappa);
        break;
      case SigmaSpacing::kClustered:
        sigma[k] = (k + 1 == n) ? 1.0 / kappa : 1.0;
        break;
    }
  }
  const Matrix<double> U = haar_orthogonal(rng, n);
  const Matrix<double> V = haar_orthogonal(rng, n);
  Matrix<double> US(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) US(i, j) = U(i, j) * sigma[j];
  }
  return gemm(US, transpose(V));
}

/// Random unit-norm right-hand side.
inline Vector<double> random_unit_vector(Xoshiro256& rng, std::size_t n) {
  Vector<double> b(n);
  for (auto& v : b) v = rng.normal();
  const double nb = nrm2(b);
  for (auto& v : b) v /= nb;
  return b;
}

/// 1-D Poisson (Dirichlet) stiffness matrix of Section III-C4:
/// tridiag(-1, 2, -1) / h^2 with h = 1/(N+1).
inline Matrix<double> poisson1d(std::size_t n_points) {
  expects(n_points >= 2, "poisson1d: need at least 2 interior points");
  const double h = 1.0 / static_cast<double>(n_points + 1);
  const double inv_h2 = 1.0 / (h * h);
  Matrix<double> A(n_points, n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    A(i, i) = 2.0 * inv_h2;
    if (i + 1 < n_points) {
      A(i, i + 1) = -inv_h2;
      A(i + 1, i) = -inv_h2;
    }
  }
  return A;
}

/// Unscaled tridiag(-1, 2, -1): the matrix the block-encoding of Section
/// III-C4 actually encodes (the 1/h^2 factor is classical rescaling).
inline Matrix<double> dirichlet_laplacian(std::size_t n_points) {
  Matrix<double> A = poisson1d(n_points);
  const double h = 1.0 / static_cast<double>(n_points + 1);
  for (std::size_t i = 0; i < n_points; ++i) {
    for (std::size_t j = 0; j < n_points; ++j) A(i, j) *= h * h;
  }
  return A;
}

/// Exact eigenvalues of tridiag(-1,2,-1) (size N): 2 - 2 cos(k pi/(N+1)),
/// giving the analytic condition number used to cross-check cond2.
inline double dirichlet_laplacian_cond(std::size_t n_points) {
  const double N = static_cast<double>(n_points);
  const double lmin = 2.0 - 2.0 * std::cos(M_PI / (N + 1.0));
  const double lmax = 2.0 - 2.0 * std::cos(N * M_PI / (N + 1.0));
  return lmax / lmin;
}

}  // namespace mpqls::linalg
