#include "hybrid/comm.hpp"

namespace mpqls::hybrid {

std::uint64_t circuit_wire_bytes(std::uint64_t gate_count) {
  // opcode (2) + up to three qubit indices (3*4) + one double parameter (8).
  return gate_count * 22;
}

std::uint64_t vector_wire_bytes(std::uint64_t length) { return length * 8; }

}  // namespace mpqls::hybrid
