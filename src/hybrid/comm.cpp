#include "hybrid/comm.hpp"

namespace mpqls::hybrid {

CommSummary summarize(const CommLog& log) {
  CommSummary s;
  for (const auto& e : log.events()) {
    if (e.direction == Direction::kCpuToQpu) {
      s.cpu_to_qpu_bytes += e.bytes;
    } else {
      s.qpu_to_cpu_bytes += e.bytes;
    }
    if (e.iteration < 0) s.setup_bytes += e.bytes;
    ++s.events;
  }
  return s;
}

std::uint64_t circuit_wire_bytes(std::uint64_t gate_count) {
  // opcode (2) + up to three qubit indices (3*4) + one double parameter (8).
  return gate_count * 22;
}

std::uint64_t vector_wire_bytes(std::uint64_t length) { return length * 8; }

}  // namespace mpqls::hybrid
