// CPU <-> QPU communication accounting (Section III-C3 / Fig. 1 of the
// paper). The solver records one event per transferred artifact — BE(A+),
// SP(b), the phase vector, SP(r_i), and each sampled solution — so the
// benchmarks can print the Fig. 1 timeline and measure data volumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpqls::hybrid {

enum class Direction { kCpuToQpu, kQpuToCpu };

struct CommEvent {
  Direction direction;
  std::string payload;     ///< e.g. "BE(A^T)", "SP(r_1)", "x_2"
  std::uint64_t bytes;     ///< estimated wire size
  int iteration;           ///< -1 for setup, otherwise refinement index
};

class CommLog {
 public:
  void record(Direction dir, std::string payload, std::uint64_t bytes, int iteration) {
    events_.push_back({dir, std::move(payload), bytes, iteration});
  }

  const std::vector<CommEvent>& events() const { return events_; }

  std::uint64_t total_bytes(Direction dir) const {
    std::uint64_t s = 0;
    for (const auto& e : events_) {
      if (e.direction == dir) s += e.bytes;
    }
    return s;
  }

  /// Bytes moved during setup (iteration < 0) — the one-off BE/phase
  /// transfer the paper contrasts with the per-iteration SP(r_i) traffic.
  std::uint64_t setup_bytes() const {
    std::uint64_t s = 0;
    for (const auto& e : events_) {
      if (e.iteration < 0) s += e.bytes;
    }
    return s;
  }

  std::uint64_t per_iteration_bytes(int iteration) const {
    std::uint64_t s = 0;
    for (const auto& e : events_) {
      if (e.iteration == iteration) s += e.bytes;
    }
    return s;
  }

 private:
  std::vector<CommEvent> events_;
};

/// Aggregate view of one job's comm log — what the service layer ships in
/// its JSON telemetry instead of the full event list. Each solve report
/// carries its own CommLog, so per-job traffic stays separable even when
/// many jobs run concurrently.
struct CommSummary {
  std::uint64_t cpu_to_qpu_bytes = 0;
  std::uint64_t qpu_to_cpu_bytes = 0;
  std::uint64_t setup_bytes = 0;  ///< one-off BE/phase/SP(b) transfers
  std::uint64_t events = 0;
};

CommSummary summarize(const CommLog& log);

/// Crude wire-size model for a circuit description: opcode + qubits +
/// parameter per gate (the paper's point is relative volume, not bytes).
std::uint64_t circuit_wire_bytes(std::uint64_t gate_count);

/// Wire size of a length-n real vector at double precision.
std::uint64_t vector_wire_bytes(std::uint64_t length);

}  // namespace mpqls::hybrid
