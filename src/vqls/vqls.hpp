// Variational Quantum Linear Solver baseline (Bravo-Prieto et al.,
// Quantum 7:1188 — the paper's reference [6]): a hardware-efficient RY+CZ
// ansatz |psi(theta)> is trained to minimize the normalized global cost
//
//   C(theta) = 1 - |<b|A|psi>|^2 / ||A|psi>||^2,
//
// which vanishes iff A|psi> is parallel to |b>. The magnitude is then
// recovered classically exactly as in the QSVT pipeline (Remark 2).
//
// Substitution note (DESIGN.md): on hardware the two inner products are
// estimated by Hadamard tests over the LCU terms of A; we evaluate them
// from the simulator state — the same "exact expectation" level as the
// rest of the evaluation. The optimizer is Nelder-Mead with restarts.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace mpqls::vqls {

struct VqlsOptions {
  int layers = 3;               ///< ansatz depth (RY layer + CZ ring each)
  int restarts = 3;             ///< random restarts of the optimizer
  int max_evaluations = 6000;   ///< cost evaluations per restart
  double cost_tolerance = 1e-10;
  std::uint64_t seed = 7;
};

struct VqlsResult {
  linalg::Vector<double> x;          ///< de-normalized solution estimate
  linalg::Vector<double> direction;  ///< |psi(theta*)| as a real vector
  double cost = 1.0;                 ///< final global cost
  int evaluations = 0;               ///< total cost-function evaluations
  int parameters = 0;                ///< ansatz parameter count
  bool converged = false;            ///< cost below tolerance
};

/// Solve A x = b variationally. A must be real and square (2^n x 2^n).
VqlsResult vqls_solve(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                      const VqlsOptions& options = {});

}  // namespace mpqls::vqls
