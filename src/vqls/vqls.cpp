#include "vqls/vqls.hpp"

#include <bit>
#include <cmath>

#include "common/contracts.hpp"
#include "common/nelder_mead.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "qsim/statevector.hpp"
#include "qsvt/denormalize.hpp"

namespace mpqls::vqls {

namespace {

// Hardware-efficient ansatz: initial RY layer, then `layers` blocks of
// (CZ ring, RY layer). Parameter count: (layers + 1) * n.
qsim::Circuit build_ansatz(std::uint32_t n, int layers, const std::vector<double>& theta) {
  qsim::Circuit c(n);
  std::size_t p = 0;
  for (std::uint32_t q = 0; q < n; ++q) c.ry(q, theta[p++]);
  for (int l = 0; l < layers; ++l) {
    if (n > 1) {
      for (std::uint32_t q = 0; q + 1 < n; ++q) c.cz(q, q + 1);
      if (n > 2) c.cz(n - 1, 0);
    }
    for (std::uint32_t q = 0; q < n; ++q) c.ry(q, theta[p++]);
  }
  return c;
}

}  // namespace

VqlsResult vqls_solve(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                      const VqlsOptions& options) {
  const std::size_t N = A.rows();
  expects(N == A.cols() && N == b.size(), "vqls: dimension mismatch");
  expects(std::has_single_bit(N), "vqls: dimension must be 2^n");
  const auto n = static_cast<std::uint32_t>(std::countr_zero(N));

  // Normalized right-hand side (state |b>).
  linalg::Vector<double> b_hat = b;
  const double b_norm = linalg::nrm2(b_hat);
  expects(b_norm > 0.0, "vqls: zero right-hand side");
  for (auto& v : b_hat) v /= b_norm;

  const int n_params = (options.layers + 1) * static_cast<int>(n);

  // Global cost from the simulator state: the RY+CZ ansatz is real, so all
  // quantities stay in real arithmetic. The ansatz is rebuilt with fresh
  // thetas on every evaluation, so the exec engine's compile-once/replay-many
  // economy never applies here — the gate-by-gate interpreter is faster than
  // compile+run for a circuit that is executed exactly once.
  auto cost = [&](const std::vector<double>& theta) {
    qsim::Statevector<double> sv(n);
    sv.apply(build_ansatz(n, options.layers, theta));
    linalg::Vector<double> psi(N);
    for (std::size_t i = 0; i < N; ++i) psi[i] = sv[i].real();
    const auto a_psi = linalg::matvec(A, psi);
    const double denom = linalg::dot(a_psi, a_psi);
    if (denom <= 1e-300) return 1.0;
    const double overlap = linalg::dot(b_hat, a_psi);
    // Cauchy-Schwarz bounds overlap^2 <= denom; clamp the rounding slack so
    // the returned cost is a valid squared distance (callers take sqrt).
    return std::fmax(0.0, 1.0 - overlap * overlap / denom);
  };

  VqlsResult best;
  best.parameters = n_params;
  Xoshiro256 rng(options.seed);
  for (int r = 0; r < options.restarts; ++r) {
    std::vector<double> theta0(static_cast<std::size_t>(n_params));
    for (auto& t : theta0) t = rng.uniform(-M_PI, M_PI);
    NelderMeadOptions nm;
    nm.max_evaluations = options.max_evaluations;
    nm.tolerance = options.cost_tolerance * 1e-2;
    const auto run = nelder_mead_minimize(cost, std::move(theta0), nm);
    best.evaluations += run.evaluations;
    if (r == 0 || run.fx < best.cost) {
      best.cost = run.fx;
      qsim::Statevector<double> sv(n);
      sv.apply(build_ansatz(n, options.layers, run.x));
      best.direction.resize(N);
      for (std::size_t i = 0; i < N; ++i) best.direction[i] = sv[i].real();
    }
    if (best.cost < options.cost_tolerance) break;
  }

  // De-normalize with the shared Remark 2 machinery.
  const auto fit = qsvt::fit_step_closed_form(A, {}, best.direction, b);
  best.x.resize(N);
  for (std::size_t i = 0; i < N; ++i) best.x[i] = fit.mu * best.direction[i];
  best.converged = best.cost < options.cost_tolerance;
  return best;
}

}  // namespace mpqls::vqls
