// Pauli-string algebra and the tree-based Pauli decomposition of an
// arbitrary matrix (Koska, Baboulin, Gazda, ISC 2024 — the paper's
// reference [25], by the same authors). The decomposition feeds the LCU
// block-encoding and its pruning is what makes dense decompositions
// tractable: zero sub-blocks are cut off entire subtrees.
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "qsim/circuit.hpp"

namespace mpqls::blockenc {

/// A tensor product of single-qubit Paulis, qubit q = character ops[q]
/// (so ops[0] acts on the least significant qubit).
struct PauliString {
  std::vector<char> ops;  ///< each of 'I', 'X', 'Y', 'Z'

  std::string label() const {  ///< MSB-first label, e.g. "ZIX"
    return std::string(ops.rbegin(), ops.rend());
  }
  std::uint32_t weight() const {
    std::uint32_t w = 0;
    for (char c : ops) w += (c != 'I');
    return w;
  }
};

struct PauliTerm {
  PauliString string;
  std::complex<double> coefficient;
};

/// Dense matrix of a Pauli string (tests; O(4^n)).
linalg::Matrix<std::complex<double>> pauli_matrix(const PauliString& p);

/// Tree (recursive quadrant) Pauli decomposition: A = sum_j c_j P_j.
/// Subtrees whose max-norm falls below `prune_tol` are dropped, which is
/// exact for prune_tol = 0 and yields the tree method's speedup on sparse
/// or structured inputs. Complexity O(N^2 log N) worst case.
std::vector<PauliTerm> tree_pauli_decompose(
    const linalg::Matrix<std::complex<double>>& A, double prune_tol = 0.0);

/// Convenience overload for real matrices.
std::vector<PauliTerm> tree_pauli_decompose(const linalg::Matrix<double>& A,
                                            double prune_tol = 0.0);

/// Reconstruct sum_j c_j P_j (tests).
linalg::Matrix<std::complex<double>> pauli_reconstruct(const std::vector<PauliTerm>& terms,
                                                       std::uint32_t n_qubits);

/// Append the (phase-free) Pauli string as gates on `circuit`, acting on
/// data qubits [0, n).
void append_pauli(qsim::Circuit& circuit, const PauliString& p);

}  // namespace mpqls::blockenc
