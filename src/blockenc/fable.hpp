// FABLE: Fast Approximate BLock Encoding (Camps & Van Beeumen, QCE 2022 —
// the paper's reference [10]). Encodes a real matrix with |a_ij| <= 1 at
// subnormalization alpha = N via one compressed uniformly-controlled RY
// over the (row, column) register; the compression threshold trades gate
// count against encoding error, which is FABLE's headline feature.
#pragma once

#include "blockenc/block_encoding.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::blockenc {

struct FableEncoding {
  BlockEncoding be;
  std::size_t rotations_kept = 0;    ///< after threshold pruning
  std::size_t rotations_total = 0;   ///< 4^n before pruning
};

/// Block-encode A/N (N = 2^n). `threshold` prunes Gray-walk angles with
/// |theta| below it (0 = exact). Requires max |a_ij| <= 1.
FableEncoding fable_block_encoding(const linalg::Matrix<double>& A, double threshold = 0.0);

}  // namespace mpqls::blockenc
