#include "blockenc/dense_embedding.hpp"

#include <bit>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/flops.hpp"
#include "linalg/jacobi_svd.hpp"

namespace mpqls::blockenc {

BlockEncoding dense_embedding(const linalg::Matrix<double>& A, double alpha) {
  const std::size_t dim = A.rows();
  expects(dim == A.cols(), "dense_embedding: square matrix required");
  expects(std::has_single_bit(dim), "dense_embedding: dimension must be a power of two");
  const auto n = static_cast<std::uint32_t>(std::countr_zero(dim));

  linalg::FlopScope flops;
  const auto svd = linalg::jacobi_svd(A);
  if (alpha <= 0.0) {
    // Tight subnormalization with headroom so sqrt(1 - s^2) stays real.
    alpha = svd.sigma.front() * (1.0 + 1e-12);
  }
  expects(svd.sigma.front() <= alpha * (1.0 + 1e-9), "dense_embedding: alpha < ||A||_2");

  // B = W S V^T with S = Sigma/alpha; the completion needs W sqrt(I-S^2) W^T
  // and V sqrt(I-S^2) V^T.
  const std::size_t N = dim;
  linalg::Matrix<double> ws(N, N), vs(N, N), wc(N, N), vc(N, N);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      const double s = svd.sigma[j] / alpha;
      const double c = std::sqrt(std::fmax(0.0, 1.0 - s * s));
      ws(i, j) = svd.U(i, j) * s;
      wc(i, j) = svd.U(i, j) * c;
      vs(i, j) = svd.V(i, j) * s;
      vc(i, j) = svd.V(i, j) * c;
    }
  }
  const auto B = linalg::gemm(ws, linalg::transpose(svd.V));
  const auto C12 = linalg::gemm(wc, linalg::transpose(svd.U));  // W sqrt(I-S^2) W^T
  const auto C21 = linalg::gemm(vc, linalg::transpose(svd.V));  // V sqrt(I-S^2) V^T
  const auto Bt = linalg::gemm(vs, linalg::transpose(svd.U));   // B^T

  linalg::Matrix<qsim::c64> U(2 * N, 2 * N);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      U(i, j) = B(i, j);
      U(i, N + j) = C12(i, j);
      U(N + i, j) = C21(i, j);
      U(N + i, N + j) = -Bt(i, j);
    }
  }

  BlockEncoding be;
  be.n_data = n;
  be.n_anc = 1;
  be.alpha = alpha;
  be.method = "dense-embedding";
  be.classical_flops = flops.count();
  be.circuit = qsim::Circuit(n + 1);
  std::vector<std::uint32_t> targets(n + 1);
  for (std::uint32_t q = 0; q <= n; ++q) targets[q] = q;  // ancilla = top bit
  be.circuit.unitary(targets, std::move(U));
  return be;
}

}  // namespace mpqls::blockenc
