#include "blockenc/tridiagonal.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "blockenc/arith/adders.hpp"
#include "stateprep/kp_tree.hpp"

namespace mpqls::blockenc {

BlockEncoding tridiagonal_block_encoding(std::uint32_t n_data) {
  expects(n_data >= 2, "tridiagonal encoding needs N = 2^n >= 4");
  const std::uint32_t n = n_data;
  const std::uint32_t a0 = n, a1 = n + 1, a2 = n + 2;  // LCU selection
  const std::uint32_t flag = n + 3;                    // boundary-swap flag
  // Carry ancillas give the shift adders their linear T-cost (Table II's
  // O(n) block-encoding scaling; see arith/adders.hpp).
  const std::uint32_t n_carry = (n > 2) ? n - 2 : 0;
  const std::uint32_t width = n + 4 + n_carry;

  BlockEncoding be;
  be.n_data = n;
  be.n_anc = 4 + n_carry;
  be.alpha = 5.0;
  be.method = "tridiagonal-lcu";
  be.circuit = qsim::Circuit(width);

  std::vector<std::uint32_t> data(n);
  for (std::uint32_t q = 0; q < n; ++q) data[q] = q;
  std::vector<std::uint32_t> carries(n_carry);
  for (std::uint32_t q = 0; q < n_carry; ++q) carries[q] = n + 4 + q;

  // PREPARE sqrt(c_i / 5) over the 5 terms {1.5 I, -C_up, -C_down, S, D/2}.
  const std::vector<double> amps = {std::sqrt(0.3), std::sqrt(0.2), std::sqrt(0.2),
                                    std::sqrt(0.2), std::sqrt(0.1), 0.0, 0.0, 0.0};
  const auto prep = stateprep::kp_state_preparation(amps);
  be.classical_flops += prep.classical_flops;
  const std::vector<std::uint32_t> anc_map = {a0, a1, a2};
  be.circuit.append(prep.circuit, anc_map);

  // Control patterns for ancilla value j on (a0, a1, a2).
  auto anc_pattern = [&](std::uint32_t j, std::vector<std::uint32_t>& pos,
                         std::vector<std::uint32_t>& neg) {
    pos.clear();
    neg.clear();
    for (std::uint32_t b = 0; b < 3; ++b) {
      ((j >> b) & 1u) ? pos.push_back(n + b) : neg.push_back(n + b);
    }
  };
  std::vector<std::uint32_t> pos, neg;

  // Term 1: -C_up (increment with a folded pi phase).
  {
    qsim::Circuit t(width);
    append_increment_carry(t, data, carries);
    t.global_phase(M_PI);
    anc_pattern(1, pos, neg);
    be.circuit.append(t.controlled(pos, neg));
  }
  // Term 2: -C_down (decrement, pi phase).
  {
    qsim::Circuit t(width);
    append_decrement_carry(t, data, carries);
    t.global_phase(M_PI);
    anc_pattern(2, pos, neg);
    be.circuit.append(t.controlled(pos, neg));
  }
  // Term 3: S — swap |0..0> <-> |1..1> using the flag ancilla: mark both
  // boundary states, flip all data bits when marked, unmark.
  {
    qsim::Circuit t(width);
    std::vector<std::uint32_t> all_data = data;
    {
      qsim::Gate g;  // flag ^= (j == 0)
      g.kind = qsim::GateKind::kX;
      g.targets = {flag};
      g.neg_controls = all_data;
      t.push(g);
    }
    t.mcx(all_data, flag);  // flag ^= (j == N-1)
    for (std::uint32_t q : data) t.cx(flag, q);
    {
      qsim::Gate g;
      g.kind = qsim::GateKind::kX;
      g.targets = {flag};
      g.neg_controls = all_data;
      t.push(g);
    }
    t.mcx(all_data, flag);
    anc_pattern(3, pos, neg);
    be.circuit.append(t.controlled(pos, neg));
  }
  // Term 4: D = -(I - 2 P_0)(I - 2 P_{N-1}) = diag(+1 at 0 and N-1, -1).
  {
    qsim::Circuit t(width);
    // Reflection about |1..1>: multi-controlled Z.
    std::vector<std::uint32_t> controls(data.begin(), data.end() - 1);
    t.mcz(controls, data.back());
    // Reflection about |0..0>: sign flip when every data bit is 0.
    qsim::Gate g;
    g.kind = qsim::GateKind::kDiagonal;
    g.targets = {data[0]};
    g.neg_controls.assign(data.begin() + 1, data.end());
    g.diagonal = std::make_shared<const std::vector<qsim::c64>>(
        std::vector<qsim::c64>{-1.0, 1.0});
    t.push(g);
    t.global_phase(M_PI);
    anc_pattern(4, pos, neg);
    be.circuit.append(t.controlled(pos, neg));
  }

  // PREPARE^dagger.
  qsim::Circuit unprep(width);
  unprep.append(prep.circuit.dagger(), anc_map);
  be.circuit.append(unprep);
  return be;
}

}  // namespace mpqls::blockenc
