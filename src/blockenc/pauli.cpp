#include "blockenc/pauli.hpp"

#include <bit>

#include "common/contracts.hpp"

namespace mpqls::blockenc {

namespace {

using c64 = std::complex<double>;
using CMatrix = linalg::Matrix<c64>;

CMatrix pauli_1q(char op) {
  switch (op) {
    case 'I': return CMatrix{{1, 0}, {0, 1}};
    case 'X': return CMatrix{{0, 1}, {1, 0}};
    case 'Y': return CMatrix{{0, c64(0, -1)}, {c64(0, 1), 0}};
    case 'Z': return CMatrix{{1, 0}, {0, -1}};
    default: break;
  }
  throw contract_violation("pauli_1q: unknown operator");
}

double max_abs(const CMatrix& m) {
  double v = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) v = std::fmax(v, std::abs(m(i, j)));
  }
  return v;
}

// Recursive quadrant descent. `prefix` accumulates the Pauli characters of
// the already-processed (most significant) qubits, MSB first.
void decompose_rec(const CMatrix& block, std::vector<char>& prefix, double prune_tol,
                   std::vector<PauliTerm>& out) {
  const std::size_t dim = block.rows();
  if (dim == 1) {
    const c64 c = block(0, 0);
    if (std::abs(c) > prune_tol) {
      PauliTerm term;
      // prefix is MSB-first; PauliString stores LSB-first.
      term.string.ops.assign(prefix.rbegin(), prefix.rend());
      term.coefficient = c;
      out.push_back(std::move(term));
    }
    return;
  }
  const std::size_t h = dim / 2;
  // Quadrants indexed by the top qubit: A = sum_{s,t} |s><t| (x) A_st and
  // |0><0| = (I+Z)/2, |1><1| = (I-Z)/2, |0><1| = (X+iY)/2, |1><0| = (X-iY)/2.
  CMatrix comb_i(h, h), comb_z(h, h), comb_x(h, h), comb_y(h, h);
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      const c64 a00 = block(i, j);
      const c64 a01 = block(i, j + h);
      const c64 a10 = block(i + h, j);
      const c64 a11 = block(i + h, j + h);
      comb_i(i, j) = 0.5 * (a00 + a11);
      comb_z(i, j) = 0.5 * (a00 - a11);
      comb_x(i, j) = 0.5 * (a01 + a10);
      comb_y(i, j) = 0.5 * c64(0, 1) * (a01 - a10);
    }
  }
  const std::pair<char, const CMatrix*> children[4] = {
      {'I', &comb_i}, {'X', &comb_x}, {'Y', &comb_y}, {'Z', &comb_z}};
  for (const auto& [op, child] : children) {
    // Tree pruning: a (near-)zero combination block kills its whole
    // subtree — with prune_tol = 0 only exactly-zero blocks are cut, so
    // the decomposition stays exact.
    if (max_abs(*child) <= prune_tol) continue;
    prefix.push_back(op);
    decompose_rec(*child, prefix, prune_tol, out);
    prefix.pop_back();
  }
}

}  // namespace

CMatrix pauli_matrix(const PauliString& p) {
  CMatrix m = CMatrix::identity(1);
  // Prepend successively higher qubits on the left so qubit 0 ends up as
  // the least significant tensor factor.
  for (std::size_t q = 0; q < p.ops.size(); ++q) {
    const CMatrix g = pauli_1q(p.ops[q]);
    CMatrix next(m.rows() * 2, m.cols() * 2);
    for (std::size_t a = 0; a < 2; ++a) {
      for (std::size_t b = 0; b < 2; ++b) {
        for (std::size_t i = 0; i < m.rows(); ++i) {
          for (std::size_t j = 0; j < m.cols(); ++j) {
            next(a * m.rows() + i, b * m.cols() + j) = g(a, b) * m(i, j);
          }
        }
      }
    }
    m = std::move(next);
  }
  return m;
}

std::vector<PauliTerm> tree_pauli_decompose(const CMatrix& A, double prune_tol) {
  expects(A.rows() == A.cols(), "pauli decomposition: square matrix required");
  expects(std::has_single_bit(A.rows()), "pauli decomposition: dimension must be 2^n");
  std::vector<PauliTerm> out;
  std::vector<char> prefix;
  decompose_rec(A, prefix, prune_tol, out);
  return out;
}

std::vector<PauliTerm> tree_pauli_decompose(const linalg::Matrix<double>& A,
                                            double prune_tol) {
  CMatrix Ac(A.rows(), A.cols());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (std::size_t j = 0; j < A.cols(); ++j) Ac(i, j) = A(i, j);
  }
  return tree_pauli_decompose(Ac, prune_tol);
}

CMatrix pauli_reconstruct(const std::vector<PauliTerm>& terms, std::uint32_t n_qubits) {
  const std::size_t dim = std::size_t{1} << n_qubits;
  CMatrix acc(dim, dim);
  for (const auto& t : terms) {
    const CMatrix m = pauli_matrix(t.string);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) acc(i, j) += t.coefficient * m(i, j);
    }
  }
  return acc;
}

void append_pauli(qsim::Circuit& circuit, const PauliString& p) {
  for (std::uint32_t q = 0; q < p.ops.size(); ++q) {
    switch (p.ops[q]) {
      case 'I': break;
      case 'X': circuit.x(q); break;
      case 'Y': circuit.y(q); break;
      case 'Z': circuit.z(q); break;
      default: throw contract_violation("append_pauli: unknown operator");
    }
  }
}

}  // namespace mpqls::blockenc
