#include "blockenc/block_encoding.hpp"

#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/statevector.hpp"

namespace mpqls::blockenc {

linalg::Matrix<std::complex<double>> encoded_block(const BlockEncoding& be) {
  const std::size_t dim = std::size_t{1} << be.n_data;
  linalg::Matrix<std::complex<double>> block(dim, dim);
  // Column j of the block: apply U to |0>_a |j> and read the ancilla-zero
  // amplitudes (cheaper than building the full unitary). The circuit is
  // compiled once and replayed for every column.
  const auto program = qsim::exec::compile<double>(be.circuit);
  const qsim::exec::Executor<double> executor;
  for (std::size_t j = 0; j < dim; ++j) {
    qsim::Statevector<double> sv(be.total_qubits());
    sv[0] = 0.0;
    sv[j] = 1.0;
    executor.run(program, sv);
    for (std::size_t i = 0; i < dim; ++i) {
      block(i, j) = std::complex<double>(sv[i].real(), sv[i].imag()) * be.alpha;
    }
  }
  return block;
}

}  // namespace mpqls::blockenc
