// Linear-Combination-of-Unitaries block-encoding (Childs & Wiebe 2012,
// the paper's reference [12]) over a Pauli decomposition: PREPARE loads
// the coefficient magnitudes on ceil(log2 L) ancillas, SELECT applies the
// j-th (phase-folded) Pauli string controlled on ancilla value j, and
// PREPARE^dagger closes the encoding with alpha = sum_j |c_j|.
#pragma once

#include "blockenc/block_encoding.hpp"
#include "blockenc/pauli.hpp"

namespace mpqls::blockenc {

/// Block-encode sum_j c_j P_j for `n_data` data qubits. Complex phases of
/// the coefficients are folded into the selected unitaries.
BlockEncoding lcu_block_encoding(const std::vector<PauliTerm>& terms, std::uint32_t n_data);

/// One-call variant: tree-decompose A (with optional pruning) then LCU.
BlockEncoding lcu_block_encoding(const linalg::Matrix<double>& A, double prune_tol = 0.0);

}  // namespace mpqls::blockenc
