// Quantum integer arithmetic: modular increment / decrement circuits.
// Two constructions:
//  * cascade — multi-controlled-X ladder, no ancillas, O(n^2) T-cost;
//  * carry   — Toffoli carry chain with n-2 clean ancillas, O(n) T-cost
//    (the linear scaling the paper's Table II assumes via [34]).
// These are the cyclic-shift operators inside the banded block-encoding of
// the Poisson matrix (Section III-C4).
#pragma once

#include <cstdint>
#include <vector>

#include "qsim/circuit.hpp"

namespace mpqls::blockenc {

/// |j> -> |j + 1 mod 2^k> via the ancilla-free MCX cascade.
void append_increment(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits);

/// |j> -> |j - 1 mod 2^k> (inverse cascade).
void append_decrement(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits);

/// Linear-T-cost increment using clean carry ancillas. Requires
/// carries.size() >= qubits.size() - 2; ancillas must be |0> and are
/// returned to |0>.
void append_increment_carry(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits,
                            const std::vector<std::uint32_t>& carries);

/// Linear-T-cost decrement (adjoint of the carry increment).
void append_decrement_carry(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits,
                            const std::vector<std::uint32_t>& carries);

}  // namespace mpqls::blockenc
