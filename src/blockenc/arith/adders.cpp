#include "blockenc/arith/adders.hpp"

#include "common/contracts.hpp"

namespace mpqls::blockenc {

void append_increment(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits) {
  // Ripple cascade: the top bit flips iff all lower bits are 1, and so on
  // down; finally the lowest bit always flips.
  const std::size_t k = qubits.size();
  for (std::size_t t = k; t-- > 1;) {
    std::vector<std::uint32_t> controls(qubits.begin(), qubits.begin() + t);
    circuit.mcx(std::move(controls), qubits[t]);
  }
  circuit.x(qubits[0]);
}

void append_decrement(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits) {
  // Inverse of increment: X on the lowest bit, then rising cascades.
  const std::size_t k = qubits.size();
  circuit.x(qubits[0]);
  for (std::size_t t = 1; t < k; ++t) {
    std::vector<std::uint32_t> controls(qubits.begin(), qubits.begin() + t);
    circuit.mcx(std::move(controls), qubits[t]);
  }
}

void append_increment_carry(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits,
                            const std::vector<std::uint32_t>& carries) {
  const std::size_t n = qubits.size();
  if (n <= 2) {
    append_increment(circuit, qubits);
    return;
  }
  expects(carries.size() >= n - 2, "increment_carry: need n-2 carry ancillas");

  // Compute carries: c_k = q_0 & q_1 & ... & q_{k+1} for k = 0..n-3.
  circuit.ccx(qubits[0], qubits[1], carries[0]);
  for (std::size_t k = 1; k + 2 < n; ++k) {
    circuit.ccx(carries[k - 1], qubits[k + 1], carries[k]);
  }
  // Flip top-down, uncomputing each carry after its single use. The
  // interleave is what keeps it reversible: carry c_{k} is uncomputed
  // (using the still-original q_{k+1}) before q_{k+1} is flipped.
  circuit.cx(carries[n - 3], qubits[n - 1]);
  for (std::size_t t = n - 2; t >= 2; --t) {
    circuit.ccx(carries[t - 2], qubits[t], carries[t - 1]);  // uncompute c_{t-1}
    circuit.cx(carries[t - 2], qubits[t]);                   // flip q_t
  }
  circuit.ccx(qubits[0], qubits[1], carries[0]);
  circuit.cx(qubits[0], qubits[1]);
  circuit.x(qubits[0]);
}

void append_decrement_carry(qsim::Circuit& circuit, const std::vector<std::uint32_t>& qubits,
                            const std::vector<std::uint32_t>& carries) {
  // Adjoint of the increment: emit it into a scratch circuit and reverse.
  qsim::Circuit scratch(circuit.num_qubits());
  append_increment_carry(scratch, qubits, carries);
  circuit.append(scratch.dagger());
}

}  // namespace mpqls::blockenc
