#include "blockenc/fable.hpp"

#include <bit>
#include <cmath>

#include "common/contracts.hpp"
#include "qsim/synth/ucr.hpp"

namespace mpqls::blockenc {

FableEncoding fable_block_encoding(const linalg::Matrix<double>& A, double threshold) {
  const std::size_t N = A.rows();
  expects(N == A.cols(), "fable: square matrix required");
  expects(std::has_single_bit(N), "fable: dimension must be 2^n");
  const auto n = static_cast<std::uint32_t>(std::countr_zero(N));

  // Qubit layout (low to high): data/column j [0, n), row ancillas i
  // [n, 2n), rotation ancilla at 2n. The oracle rotates the flag qubit by
  // theta_ij = 2 arccos(a_ij) addressed by (i, j).
  FableEncoding out;
  out.be.n_data = n;
  out.be.n_anc = n + 1;
  out.be.alpha = static_cast<double>(N);
  out.be.method = "fable";
  qsim::Circuit& c = out.be.circuit = qsim::Circuit(2 * n + 1);

  const std::uint32_t rot = 2 * n;
  for (std::uint32_t q = n; q < 2 * n; ++q) c.h(q);

  // UCRY index bits: row bits are the low controls, column bits the high
  // ones -> angle index x = i | (j << n), value arccos(A(i, j)).
  std::vector<std::uint32_t> controls(2 * n);
  for (std::uint32_t b = 0; b < n; ++b) {
    controls[b] = n + b;      // row register
    controls[n + b] = b;      // column register
  }
  std::vector<double> angles(N * N);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      const double a = A(i, j);
      expects(std::fabs(a) <= 1.0 + 1e-12, "fable: entries must satisfy |a_ij| <= 1");
      angles[i | (j << n)] = 2.0 * std::acos(std::fmin(1.0, std::fmax(-1.0, a)));
    }
  }
  out.rotations_total = angles.size();
  out.rotations_kept = qsim::append_ucry_pruned(c, controls, rot, angles, threshold);
  out.be.classical_flops = static_cast<std::uint64_t>(N) * N * std::max(1u, 2 * n);

  // Swap row and column registers, then H on the rows.
  for (std::uint32_t b = 0; b < n; ++b) c.swap(b, n + b);
  for (std::uint32_t q = n; q < 2 * n; ++q) c.h(q);
  return out;
}

}  // namespace mpqls::blockenc
