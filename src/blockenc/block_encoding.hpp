// Block-encoding interface (Section II-A1 of the paper): a unitary U on
// data + ancilla qubits with  <0|_a <i| U |0>_a |j> = A_ij / alpha.
// Layout convention: data qubits are the low indices [0, n_data), ancillas
// sit above them — so the encoded block is the top-left corner of the
// unitary's matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "qsim/circuit.hpp"

namespace mpqls::blockenc {

struct BlockEncoding {
  qsim::Circuit circuit;      ///< on n_data + n_anc qubits
  std::uint32_t n_data = 0;
  std::uint32_t n_anc = 0;
  double alpha = 1.0;         ///< subnormalization factor
  std::string method;         ///< "dense-embedding", "lcu-pauli", "fable", ...
  std::uint64_t classical_flops = 0;  ///< preprocessing cost on the CPU

  std::uint32_t total_qubits() const { return n_data + n_anc; }

  std::vector<std::uint32_t> data_qubits() const {
    std::vector<std::uint32_t> q(n_data);
    for (std::uint32_t i = 0; i < n_data; ++i) q[i] = i;
    return q;
  }
  std::vector<std::uint32_t> ancilla_qubits() const {
    std::vector<std::uint32_t> q(n_anc);
    for (std::uint32_t i = 0; i < n_anc; ++i) q[i] = n_data + i;
    return q;
  }
};

/// Materialize the encoded block alpha * (top-left corner of U): the matrix
/// the encoding claims to represent. O(4^n) — tests and small problems.
linalg::Matrix<std::complex<double>> encoded_block(const BlockEncoding& be);

}  // namespace mpqls::blockenc
