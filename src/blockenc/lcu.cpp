#include "blockenc/lcu.hpp"

#include <bit>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/flops.hpp"
#include "stateprep/kp_tree.hpp"

namespace mpqls::blockenc {

BlockEncoding lcu_block_encoding(const std::vector<PauliTerm>& terms, std::uint32_t n_data) {
  expects(!terms.empty(), "lcu: need at least one term");
  const std::size_t L = terms.size();
  const std::uint32_t m = (L <= 1) ? 1 : static_cast<std::uint32_t>(std::bit_width(L - 1));
  const std::size_t slots = std::size_t{1} << m;

  double alpha = 0.0;
  for (const auto& t : terms) alpha += std::abs(t.coefficient);
  expects(alpha > 0.0, "lcu: all coefficients are zero");

  BlockEncoding be;
  be.n_data = n_data;
  be.n_anc = m;
  be.alpha = alpha;
  be.method = "lcu-pauli";
  be.circuit = qsim::Circuit(n_data + m);

  // PREPARE: |0> -> sum_j sqrt(|c_j|/alpha) |j> on the ancilla register.
  std::vector<double> amps(slots, 0.0);
  for (std::size_t j = 0; j < L; ++j) amps[j] = std::sqrt(std::abs(terms[j].coefficient) / alpha);
  const auto prep = stateprep::kp_state_preparation(amps);
  be.classical_flops += prep.classical_flops;

  std::vector<std::uint32_t> anc_map(m);
  for (std::uint32_t b = 0; b < m; ++b) anc_map[b] = n_data + b;
  be.circuit.append(prep.circuit, anc_map);

  // SELECT: controlled (e^{i arg c_j} P_j) on ancilla value j. Controls on
  // zero bits are negative controls (no X sandwiches needed).
  for (std::size_t j = 0; j < L; ++j) {
    qsim::Circuit term_circ(n_data);
    append_pauli(term_circ, terms[j].string);
    const double phase = std::arg(terms[j].coefficient);
    if (std::fabs(phase) > 1e-15) term_circ.global_phase(phase);
    std::vector<std::uint32_t> pos, neg;
    for (std::uint32_t b = 0; b < m; ++b) {
      ((j >> b) & 1u) ? pos.push_back(n_data + b) : neg.push_back(n_data + b);
    }
    be.circuit.append(term_circ.controlled(pos, neg));
  }

  // PREPARE^dagger.
  qsim::Circuit unprep(n_data + m);
  unprep.append(prep.circuit.dagger(), anc_map);
  be.circuit.append(unprep);
  return be;
}

BlockEncoding lcu_block_encoding(const linalg::Matrix<double>& A, double prune_tol) {
  expects(std::has_single_bit(A.rows()), "lcu: dimension must be 2^n");
  const auto n = static_cast<std::uint32_t>(std::countr_zero(A.rows()));
  linalg::FlopScope flops;
  const auto terms = tree_pauli_decompose(A, prune_tol);
  auto be = lcu_block_encoding(terms, n);
  be.classical_flops += flops.count() + 4ull * A.rows() * A.cols();  // decomposition work
  return be;
}

}  // namespace mpqls::blockenc
