// Gate-level block-encoding of the Dirichlet tridiagonal Toeplitz matrix
// T = tridiag(-1, 2, -1) — the 1-D Poisson stiffness matrix of Section
// III-C4 (up to the classical 1/h^2 scale). The paper cites the
// double-log-depth construction of Ty et al. [37]; we build the same
// matrix as an exact 5-term LCU over elementary unitaries
//
//   T = 1.5 I - C_up - C_down + S + 0.5 D,
//
// where C_up/C_down are the modular increment/decrement (ripple-adder
// circuits, Camps et al. [9] style), S swaps the two boundary basis states
// |0..0> <-> |1..1| via a flag ancilla, and D = 2(P_0 + P_{N-1}) - I is a
// product of two boundary reflections. All five are exact circuits, so the
// encoding error is zero and alpha = 5. (Substitution note in DESIGN.md:
// same encoded matrix and ancilla structure as [37], different depth
// constant.)
#pragma once

#include <cstdint>

#include "blockenc/block_encoding.hpp"

namespace mpqls::blockenc {

/// Block-encode tridiag(-1, 2, -1) / 5 on n data qubits (N = 2^n >= 4).
/// Ancillas: 3 LCU selection qubits + 1 boundary flag.
BlockEncoding tridiagonal_block_encoding(std::uint32_t n_data);

}  // namespace mpqls::blockenc
