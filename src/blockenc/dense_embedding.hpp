// Exact one-ancilla block-encoding of an arbitrary real matrix via the
// unitary completion  U = [[B, sqrt(I-BB^T)], [sqrt(I-B^T B), -B^T]] with
// B = A/alpha, built from the SVD. This is the workhorse encoding for
// simulator experiments (the circuit carries U as a dense payload); the
// LCU / FABLE / tridiagonal encoders provide gate-level alternatives.
#pragma once

#include "blockenc/block_encoding.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::blockenc {

/// Block-encode A (square, 2^n x 2^n). If alpha <= 0 the tight value
/// ||A||_2 (plus a hair of headroom) is used. Requires alpha >= ||A||_2.
BlockEncoding dense_embedding(const linalg::Matrix<double>& A, double alpha = 0.0);

}  // namespace mpqls::blockenc
