#include "wire/frame.hpp"

namespace mpqls::wire {

namespace {

/// Parse and validate the 16-byte header; returns the declared payload
/// length. Shared by open_frame and peek_tag so the two cannot drift.
std::uint64_t check_header(std::string_view frame, FrameTag* tag, std::uint8_t* version_out) {
  if (frame.size() < kFrameHeaderBytes) throw WireError("truncated frame header", frame.size());
  WireReader r(frame);
  if (r.u32() != kWireMagic) throw WireError("bad frame magic", 0);
  const std::uint8_t version = r.u8();
  if (version < kWireMinVersion || version > kWireVersion) {
    throw WireError("unsupported frame version", 4);
  }
  const std::uint8_t raw_tag = r.u8();
  if (raw_tag < 1 || raw_tag > 4) throw WireError("unknown frame tag", 5);
  if (r.u16() != 0) throw WireError("nonzero reserved field", 6);
  *tag = static_cast<FrameTag>(raw_tag);
  if (version_out) *version_out = version;
  return r.u64();
}

}  // namespace

std::string seal_frame(FrameTag tag, std::string payload) {
  WireWriter head;
  head.u32(kWireMagic)
      .u8(kWireVersion)
      .u8(static_cast<std::uint8_t>(tag))
      .u16(0)
      .u64(payload.size());
  std::string frame = head.take();
  frame += payload;
  return frame;
}

FrameView open_frame(std::string_view frame) {
  FrameTag tag;
  std::uint8_t version = kWireVersion;
  const std::uint64_t declared = check_header(frame, &tag, &version);
  const std::size_t actual = frame.size() - kFrameHeaderBytes;
  if (declared != actual) {
    throw WireError(declared > actual ? "frame shorter than declared length"
                                      : "frame longer than declared length",
                    kFrameHeaderBytes);
  }
  // Every current payload starts with at least one mandatory field, so an
  // empty payload can only be a truncation upstream of us.
  if (actual == 0) throw WireError("empty frame payload", kFrameHeaderBytes);
  return {tag, version, frame.substr(kFrameHeaderBytes)};
}

FrameTag peek_tag(std::string_view frame) {
  FrameTag tag;
  check_header(frame, &tag, nullptr);
  return tag;
}

}  // namespace mpqls::wire
