// Length-prefixed little-endian framing for the binary job protocol
// (Content-Type: application/x-mpqls-frame). A frame is a fixed 16-byte
// header followed by one payload:
//
//   offset  size  field
//   0       4     magic "MPQB" (0x42 0x51 0x50 0x4D little-endian u32)
//   4       1     version (kWireVersion; bumped on any layout change)
//   5       1     frame tag (FrameTag: what the payload is)
//   6       2     reserved, must be zero
//   8       8     payload byte length, little-endian u64
//   16      ...   payload (exactly the declared length; no trailing bytes)
//
// WireWriter/WireReader are the primitive layer: integers are serialized
// little-endian byte by byte (host-endianness independent), doubles as
// their IEEE-754 bit pattern, vectors as a u64 count plus raw f64s with a
// bulk memcpy fast path on little-endian hosts. Every read is
// bounds-checked BEFORE any allocation sized by untrusted input, and
// failures throw WireError carrying the byte offset — never the bytes
// themselves, so a 400 rendered from e.what() is safe to echo back on a
// text channel no matter what the body contained.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpqls::wire {

inline constexpr std::uint32_t kWireMagic = 0x4251504Du;  // "MPQB" on the wire
inline constexpr std::uint8_t kWireVersion = 3;  // v3: optional trace id appended to SolveRequest
// Oldest version this decoder still accepts. v3 only APPENDS fields to
// the request payload (the DESIGN.md append-only rule), so v2 frames
// decode unchanged — new fields take their defaults. Anything older or
// newer is rejected.
inline constexpr std::uint8_t kWireMinVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// What a frame's payload is. Unknown tags are a decode error, so new
/// payload kinds require a tag here plus a version discussion in DESIGN.md.
enum class FrameTag : std::uint8_t {
  kSolveRequest = 1,
  kSolveResult = 2,
  kMatrix = 3,
  kShardExchange = 4,  ///< peer-to-peer amplitude block in a shard-group solve
};

/// Malformed or truncated frame. The message names the violated rule and
/// the byte offset only — payload bytes never appear in it.
class WireError : public std::runtime_error {
 public:
  WireError(const std::string& what, std::size_t offset)
      : std::runtime_error("wire: " + what + " at byte " + std::to_string(offset)),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class WireWriter {
 public:
  WireWriter& u8(std::uint8_t v) {
    buf_.push_back(static_cast<char>(v));
    return *this;
  }
  WireWriter& u16(std::uint16_t v) { return le(v, 2); }
  WireWriter& u32(std::uint32_t v) { return le(v, 4); }
  WireWriter& u64(std::uint64_t v) { return le(v, 8); }
  WireWriter& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  WireWriter& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

  WireWriter& str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
    return *this;
  }

  /// u64 count + raw little-endian doubles (bulk copy on LE hosts).
  WireWriter& f64_array(const double* data, std::size_t count) {
    u64(count);
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t at = buf_.size();
      buf_.resize(at + count * sizeof(double));
      std::memcpy(buf_.data() + at, data, count * sizeof(double));
    } else {
      for (std::size_t i = 0; i < count; ++i) f64(data[i]);
    }
    return *this;
  }

  std::size_t size() const { return buf_.size(); }
  std::string take() { return std::move(buf_); }

 private:
  WireWriter& le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    return *this;
  }

  std::string buf_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data, std::size_t base_offset = 0)
      : data_(data), base_(base_offset) {}

  std::size_t offset() const { return base_ + off_; }
  std::size_t remaining() const { return data_.size() - off_; }
  bool done() const { return off_ == data_.size(); }

  std::uint8_t u8() {
    need(1, "truncated u8");
    return static_cast<std::uint8_t>(data_[off_++]);
  }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2, "truncated u16")); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4, "truncated u32")); }
  std::uint64_t u64() { return le(8, "truncated u64"); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(le(8, "truncated f64")); }

  /// u32 length + bytes; `max_len` caps the declared length before any
  /// copy, so a hostile 4 GiB string length dies at the check, not in the
  /// allocator.
  std::string str(std::size_t max_len) {
    const std::size_t at = offset();
    const std::uint32_t len = u32();
    if (len > max_len) throw WireError("string length over cap", at);
    need(len, "truncated string");
    std::string out(data_.substr(off_, len));
    off_ += len;
    return out;
  }

  /// u64 count + raw doubles into `out`; `max_count` is checked against
  /// BOTH the cap and the remaining bytes before the resize.
  void f64_array(std::vector<double>& out, std::size_t max_count) {
    const std::size_t at = offset();
    const std::uint64_t count = u64();
    if (count > max_count) throw WireError("array length over cap", at);
    need(count * sizeof(double), "truncated f64 array");
    out.resize(static_cast<std::size_t>(count));
    read_doubles(out.data(), static_cast<std::size_t>(count));
  }

  /// Raw bytes with an externally-validated count (shard-exchange
  /// payloads, whose declared length was already checked against the
  /// frame remainder).
  void read_bytes(char* out, std::size_t count) {
    need(count, "truncated byte block");
    std::memcpy(out, data_.data() + off_, count);
    off_ += count;
  }

  /// Raw doubles with an externally-validated count (matrix payloads,
  /// where rows*cols was already bounds-checked).
  void read_doubles(double* out, std::size_t count) {
    need(count * sizeof(double), "truncated f64 block");
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, data_.data() + off_, count * sizeof(double));
      off_ += count * sizeof(double);
    } else {
      for (std::size_t i = 0; i < count; ++i) out[i] = f64();
    }
  }

  void expect_done() const {
    if (!done()) throw WireError("trailing bytes after payload", offset());
  }

 private:
  void need(std::size_t bytes, const char* what) const {
    if (data_.size() - off_ < bytes) throw WireError(what, offset());
  }

  std::uint64_t le(int bytes, const char* what) {
    need(static_cast<std::size_t>(bytes), what);
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[off_ + i])) << (8 * i);
    }
    off_ += static_cast<std::size_t>(bytes);
    return v;
  }

  std::string_view data_;
  std::size_t base_;
  std::size_t off_ = 0;
};

/// Prepend the 16-byte header to a finished payload.
std::string seal_frame(FrameTag tag, std::string payload);

/// Validate the header of `frame` (magic, version within
/// [kWireMinVersion, kWireVersion], known tag, exact declared length)
/// and return the payload view plus its tag and negotiated version —
/// decoders branch on `version` to skip fields an older writer did not
/// emit. Throws WireError on any violation, including a zero-length
/// frame of a tag whose payload cannot be empty (every current tag).
struct FrameView {
  FrameTag tag;
  std::uint8_t version = kWireVersion;
  std::string_view payload;
};
FrameView open_frame(std::string_view frame);

/// Header check only: the tag of a well-formed frame header. Cheap enough
/// for content-negotiation branches that must not touch the payload.
FrameTag peek_tag(std::string_view frame);

}  // namespace mpqls::wire
