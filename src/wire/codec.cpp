#include "wire/codec.hpp"

#include <cctype>

#include "common/contracts.hpp"
#include "common/hash.hpp"
#include "service/limits.hpp"
#include "wire/frame.hpp"

namespace mpqls::wire {

namespace {

using service::kMaxDimension;
using service::kMaxRhsCount;

constexpr std::size_t kMaxIdBytes = 4096;       ///< job labels are short strings
constexpr std::size_t kMaxPayloadString = 65536;  ///< comm-event payload names
// One residual per refinement iteration plus the initial solve; telemetry
// entries follow the same count.
constexpr std::size_t kMaxPerSolveEntries =
    static_cast<std::size_t>(service::kMaxIterations) + 2;

std::uint8_t checked_enum(WireReader& r, std::uint8_t max, const char* what) {
  const std::size_t at = r.offset();
  const std::uint8_t v = r.u8();
  if (v > max) throw WireError(what, at);
  return v;
}

std::size_t read_dimension(WireReader& r) {
  const std::size_t at = r.offset();
  const std::uint32_t n = r.u32();
  if (n < 1 || n > kMaxDimension) throw WireError("matrix dimension out of range", at);
  return n;
}

// --- options ---------------------------------------------------------------
// Fixed-size block, every QsvtIrOptions field in declaration order. The
// encoder and decoder must stay in lockstep; the JSON round-trip parity
// test is what catches a drifted field.

void write_options(WireWriter& w, const solver::QsvtIrOptions& o) {
  w.u8(static_cast<std::uint8_t>(o.qsvt.backend))
      .u8(static_cast<std::uint8_t>(o.qsvt.precision))
      .u8(static_cast<std::uint8_t>(o.qsvt.poly_method))
      .u8(static_cast<std::uint8_t>(o.qsvt.encoding))
      .u8(o.use_brent ? 1 : 0)
      .u8(static_cast<std::uint8_t>(o.residual_precision))
      .f64(o.eps)
      .i64(o.max_iterations)
      .f64(o.qsvt.eps_l)
      .f64(o.qsvt.kappa)
      .f64(o.qsvt.kappa_margin)
      .u64(o.qsvt.shots)
      .u64(o.qsvt.seed)
      .f64(o.qsvt.noise.depolarizing_per_gate)
      .f64(o.qsvt.noise.damping_per_gate)
      .i64(o.qsvt.qsp_options.max_fpi_iterations)
      .i64(o.qsvt.qsp_options.max_newton_iterations)
      .i64(o.qsvt.qsp_options.max_lbfgs_iterations)
      .f64(o.qsvt.qsp_options.tolerance)
      .f64(o.qsvt.qsp_options.lbfgs_threshold)
      .u8(o.qsvt.qsp_options.enable_newton ? 1 : 0)
      .u8(o.qsvt.qsp_options.enable_lbfgs ? 1 : 0)
      .f64(o.escalation.stall_ratio)
      .f64(o.escalation.half_floor)
      .f64(o.escalation.single_floor);
}

solver::QsvtIrOptions read_options(WireReader& r) {
  solver::QsvtIrOptions o;
  o.qsvt.backend = static_cast<qsvt::Backend>(checked_enum(r, 1, "unknown backend"));
  o.qsvt.precision = static_cast<qsvt::QpuPrecision>(checked_enum(r, 3, "unknown precision"));
  o.qsvt.poly_method =
      static_cast<qsvt::PolyMethod>(checked_enum(r, 1, "unknown poly method"));
  o.qsvt.encoding = static_cast<qsvt::EncodingKind>(checked_enum(r, 2, "unknown encoding"));
  o.use_brent = checked_enum(r, 1, "bad use_brent flag") != 0;
  o.residual_precision = static_cast<solver::ResidualPrecision>(
      checked_enum(r, 1, "unknown residual precision"));
  o.eps = r.f64();
  o.max_iterations = static_cast<int>(service::checked_iterations(r.i64()));
  o.qsvt.eps_l = r.f64();
  o.qsvt.kappa = r.f64();
  o.qsvt.kappa_margin = r.f64();
  o.qsvt.shots = r.u64();
  expects(o.qsvt.shots <= service::kMaxShots, "request: shots out of range");
  o.qsvt.seed = r.u64();
  o.qsvt.noise.depolarizing_per_gate = r.f64();
  o.qsvt.noise.damping_per_gate = r.f64();
  auto& s = o.qsvt.qsp_options;
  s.max_fpi_iterations = static_cast<int>(service::checked_iterations(r.i64()));
  s.max_newton_iterations = static_cast<int>(service::checked_iterations(r.i64()));
  s.max_lbfgs_iterations = static_cast<int>(service::checked_iterations(r.i64()));
  s.tolerance = r.f64();
  s.lbfgs_threshold = r.f64();
  s.enable_newton = checked_enum(r, 1, "bad enable_newton flag") != 0;
  s.enable_lbfgs = checked_enum(r, 1, "bad enable_lbfgs flag") != 0;
  o.escalation.stall_ratio = r.f64();
  o.escalation.half_floor = r.f64();
  o.escalation.single_floor = r.f64();
  return o;
}

// --- matrices --------------------------------------------------------------

void write_matrix(WireWriter& w, const linalg::Matrix<double>& A) {
  w.u32(static_cast<std::uint32_t>(A.rows())).u32(static_cast<std::uint32_t>(A.cols()));
  w.f64_array(A.data(), A.rows() * A.cols());
}

linalg::Matrix<double> read_matrix(WireReader& r) {
  const std::size_t rows = read_dimension(r);
  const std::size_t cols = read_dimension(r);
  const std::size_t at = r.offset();
  const std::uint64_t declared = r.u64();
  if (declared != rows * cols) throw WireError("matrix element count mismatch", at);
  linalg::Matrix<double> A(rows, cols);
  r.read_doubles(A.data(), rows * cols);
  return A;
}

// --- vectors ---------------------------------------------------------------

void write_vector(WireWriter& w, const linalg::Vector<double>& v) {
  w.f64_array(v.data(), v.size());
}

linalg::Vector<double> read_vector(WireReader& r, std::size_t max_len) {
  std::vector<double> out;
  r.f64_array(out, max_len);
  return out;
}

// --- comm log --------------------------------------------------------------

void write_comm(WireWriter& w, const hybrid::CommLog& log) {
  w.u32(static_cast<std::uint32_t>(log.events().size()));
  for (const auto& e : log.events()) {
    w.u8(e.direction == hybrid::Direction::kCpuToQpu ? 0 : 1)
        .str(e.payload)
        .u64(e.bytes)
        .i64(e.iteration);
  }
}

hybrid::CommLog read_comm(WireReader& r) {
  hybrid::CommLog log;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto dir = checked_enum(r, 1, "unknown comm direction") == 0
                         ? hybrid::Direction::kCpuToQpu
                         : hybrid::Direction::kQpuToCpu;
    std::string payload = r.str(kMaxPayloadString);
    const std::uint64_t bytes = r.u64();
    const int iteration = static_cast<int>(r.i64());
    log.record(dir, std::move(payload), bytes, iteration);
  }
  return log;
}

// --- reports ---------------------------------------------------------------

void write_report(WireWriter& w, const solver::QsvtIrReport& rep) {
  write_vector(w, rep.x);
  w.f64_array(rep.scaled_residuals.data(), rep.scaled_residuals.size());
  w.i64(rep.iterations)
      .u8(rep.converged ? 1 : 0)
      .f64(rep.kappa)
      .f64(rep.eps_l_requested)
      .f64(rep.eps_l_effective)
      .i64(rep.poly_degree)
      .f64(rep.poly_scale)
      .u64(rep.theoretical_iteration_bound)
      .u64(rep.total_be_calls)
      .u64(rep.program_source_gates)
      .u64(rep.program_ops)
      .u64(rep.program_depth)
      .f64(rep.program_compile_seconds);
  for (const auto v : rep.tier_solves) w.u64(v);
  for (const auto v : rep.tier_iterations) w.u64(v);
  w.u64(rep.precision_switches)
      .u8(rep.dd128_verified ? 1 : 0)
      .f64(rep.dd128_final_residual);
  w.u32(static_cast<std::uint32_t>(rep.solves.size()));
  for (const auto& s : rep.solves) {
    w.f64(s.mu).f64(s.success_probability).u64(s.be_calls).u64(s.circuit_gates);
  }
  write_comm(w, rep.comm);
}

solver::QsvtIrReport read_report(WireReader& r) {
  solver::QsvtIrReport rep;
  rep.x = read_vector(r, kMaxDimension);
  r.f64_array(rep.scaled_residuals, kMaxPerSolveEntries);
  rep.iterations = static_cast<int>(r.i64());
  rep.converged = r.u8() != 0;
  rep.kappa = r.f64();
  rep.eps_l_requested = r.f64();
  rep.eps_l_effective = r.f64();
  rep.poly_degree = static_cast<int>(r.i64());
  rep.poly_scale = r.f64();
  rep.theoretical_iteration_bound = r.u64();
  rep.total_be_calls = r.u64();
  rep.program_source_gates = r.u64();
  rep.program_ops = r.u64();
  rep.program_depth = r.u64();
  rep.program_compile_seconds = r.f64();
  for (auto& v : rep.tier_solves) v = r.u64();
  for (auto& v : rep.tier_iterations) v = r.u64();
  rep.precision_switches = r.u64();
  rep.dd128_verified = r.u8() != 0;
  rep.dd128_final_residual = r.f64();
  const std::size_t at = r.offset();
  const std::uint32_t telemetry = r.u32();
  if (telemetry > kMaxPerSolveEntries) throw WireError("telemetry count over cap", at);
  rep.solves.reserve(telemetry);
  for (std::uint32_t i = 0; i < telemetry; ++i) {
    solver::SolveTelemetry s;
    s.mu = r.f64();
    s.success_probability = r.f64();
    s.be_calls = r.u64();
    s.circuit_gates = r.u64();
    rep.solves.push_back(s);
  }
  rep.comm = read_comm(r);
  return rep;
}

/// Reader over a frame's payload with absolute (whole-frame) offsets in
/// the errors, plus the tag check every decode entry point shares.
/// `version_out` receives the negotiated frame version for decoders that
/// branch on it (the request decoder's v3 trailing trace field).
WireReader payload_reader(std::string_view frame, FrameTag want,
                          std::uint8_t* version_out = nullptr) {
  const FrameView view = open_frame(frame);
  if (view.tag != want) throw WireError("unexpected frame tag", 5);
  if (version_out) *version_out = view.version;
  return WireReader(view.payload, kFrameHeaderBytes);
}

}  // namespace

bool is_frame_content_type(std::string_view value) {
  // Strip parameters (";charset=...") and surrounding spaces.
  const auto semi = value.find(';');
  if (semi != std::string_view::npos) value = value.substr(0, semi);
  while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
  while (!value.empty() && value.back() == ' ') value.remove_suffix(1);
  const std::string_view want = kContentType;
  if (value.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(value[i])) != want[i]) return false;
  }
  return true;
}

std::string encode_request(const service::SolveRequest& request) {
  WireWriter w;
  w.str(request.id);
  if (request.matrix_ref != 0) {
    w.u8(1).u64(request.matrix_ref);
  } else {
    w.u8(0);
    write_matrix(w, request.A);
  }
  write_options(w, request.options);
  w.u32(static_cast<std::uint32_t>(request.rhs.size()));
  for (const auto& b : request.rhs) write_vector(w, b);
  // v3 append-only extension: the client trace id rides at the END of
  // the payload (zero = none), so the field is also reachable by a
  // fixed-offset-from-the-end peek without decoding the vectors.
  w.u64(request.trace_id.hi).u64(request.trace_id.lo);
  return seal_frame(FrameTag::kSolveRequest, w.take());
}

service::SolveRequest decode_request(std::string_view frame,
                                     const service::MatrixResolver& resolve) {
  std::uint8_t version = kWireVersion;
  WireReader r = payload_reader(frame, FrameTag::kSolveRequest, &version);
  service::SolveRequest req;
  req.id = r.str(kMaxIdBytes);
  const std::uint8_t kind = checked_enum(r, 1, "unknown matrix kind");
  if (kind == 1) {
    req.matrix_ref = r.u64();
    if (resolve) {
      req.shared_A = resolve(req.matrix_ref);
      expects(req.shared_A != nullptr, "wire: unknown matrix_ref");
    }
  } else {
    req.A = read_matrix(r);
  }
  req.options = read_options(r);

  const std::size_t at = r.offset();
  const std::uint32_t count = r.u32();
  if (count < 1) throw WireError("request needs at least one rhs", at);
  if (count > kMaxRhsCount) throw WireError("too many right-hand sides", at);
  // Resolved requests check RHS length against the matrix; unresolved
  // by-ref ones can only check mutual consistency here — the final check
  // against the store entry runs at solve time.
  const std::size_t n = req.matrix().rows();
  req.rhs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t vec_at = r.offset();
    auto b = read_vector(r, kMaxDimension);
    const std::size_t want = n != 0 ? n : (req.rhs.empty() ? b.size() : req.rhs.front().size());
    if (b.empty() || b.size() != want) throw WireError("rhs dimension mismatch", vec_at);
    req.rhs.push_back(std::move(b));
  }
  // v2 frames end here; v3 appended the trace id (v2 defaults to zero).
  if (version >= 3) {
    req.trace_id.hi = r.u64();
    req.trace_id.lo = r.u64();
  }
  r.expect_done();
  return req;
}

trace::TraceId peek_request_trace(std::string_view frame) {
  const FrameView view = open_frame(frame);
  if (view.tag != FrameTag::kSolveRequest) throw WireError("unexpected frame tag", 5);
  trace::TraceId id;
  if (view.version >= 3 && view.payload.size() >= 16) {
    WireReader r(view.payload.substr(view.payload.size() - 16),
                 kFrameHeaderBytes + view.payload.size() - 16);
    id.hi = r.u64();
    id.lo = r.u64();
  }
  return id;
}

std::optional<std::uint64_t> peek_request_matrix_ref(std::string_view frame) {
  WireReader r = payload_reader(frame, FrameTag::kSolveRequest);
  r.str(kMaxIdBytes);
  const std::uint8_t kind = checked_enum(r, 1, "unknown matrix kind");
  if (kind == 1) return r.u64();
  return std::nullopt;
}

std::uint64_t request_affinity_key(std::string_view frame) {
  WireReader r = payload_reader(frame, FrameTag::kSolveRequest);
  r.str(kMaxIdBytes);
  const std::uint8_t kind = checked_enum(r, 1, "unknown matrix kind");
  if (kind == 1) return r.u64();
  // Inline matrix: stream the content hash without materializing it, so
  // the key equals the matrix_ref a PUT of the same matrix would return.
  const std::size_t rows = read_dimension(r);
  const std::size_t cols = read_dimension(r);
  const std::size_t at = r.offset();
  if (r.u64() != rows * cols) throw WireError("matrix element count mismatch", at);
  Fnv1a h;
  h.u64(rows).u64(cols);
  for (std::size_t i = 0; i < rows * cols; ++i) h.f64(r.f64());
  return h.digest();
}

std::string encode_result(const service::SolveResult& result) {
  WireWriter w;
  w.str(result.id)
      .u64(result.fp.matrix_hash)
      .u64(result.fp.options_hash)
      .u8(result.cache_hit ? 1 : 0)
      .u8(result.all_converged ? 1 : 0)
      .f64(result.prepare_seconds)
      .f64(result.total_seconds)
      .u64(result.panels_executed)
      .u64(result.panel_lanes);
  w.u32(static_cast<std::uint32_t>(result.solves.size()));
  for (const auto& s : result.solves) {
    w.f64(s.solve_seconds);
    write_report(w, s.report);
  }
  return seal_frame(FrameTag::kSolveResult, w.take());
}

service::SolveResult decode_result(std::string_view frame) {
  WireReader r = payload_reader(frame, FrameTag::kSolveResult);
  service::SolveResult result;
  result.id = r.str(kMaxIdBytes);
  result.fp.matrix_hash = r.u64();
  result.fp.options_hash = r.u64();
  result.cache_hit = r.u8() != 0;
  result.all_converged = r.u8() != 0;
  result.prepare_seconds = r.f64();
  result.total_seconds = r.f64();
  result.panels_executed = r.u64();
  result.panel_lanes = r.u64();
  const std::size_t at = r.offset();
  const std::uint32_t count = r.u32();
  if (count > kMaxRhsCount) throw WireError("too many solve entries", at);
  result.solves.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    service::RhsResult s;
    s.solve_seconds = r.f64();
    s.report = read_report(r);
    result.solves.push_back(std::move(s));
  }
  r.expect_done();
  return result;
}

std::string encode_matrix(const linalg::Matrix<double>& A) {
  WireWriter w;
  write_matrix(w, A);
  return seal_frame(FrameTag::kMatrix, w.take());
}

linalg::Matrix<double> decode_matrix(std::string_view frame) {
  WireReader r = payload_reader(frame, FrameTag::kMatrix);
  linalg::Matrix<double> A = read_matrix(r);
  r.expect_done();
  return A;
}

std::string encode_shard_exchange(std::uint64_t group, std::uint32_t from, std::uint64_t seq,
                                  std::string_view payload) {
  WireWriter w;
  w.u64(group).u32(from).u64(seq).u64(payload.size());
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return seal_frame(FrameTag::kShardExchange, std::move(out));
}

ShardExchange decode_shard_exchange(std::string_view frame) {
  WireReader r = payload_reader(frame, FrameTag::kShardExchange);
  ShardExchange ex;
  ex.group = r.u64();
  ex.from = r.u32();
  ex.seq = r.u64();
  const std::size_t at = r.offset();
  const std::uint64_t len = r.u64();
  // The amplitude block is the rest of the frame, exactly: its length is
  // declared so truncation is distinguishable from trailing garbage.
  if (len != r.remaining()) throw WireError("shard payload length mismatch", at);
  ex.payload.resize(static_cast<std::size_t>(len));
  if (len != 0) r.read_bytes(ex.payload.data(), static_cast<std::size_t>(len));
  r.expect_done();
  return ex;
}

std::uint64_t hash_matrix_frame(std::string_view frame) {
  WireReader r = payload_reader(frame, FrameTag::kMatrix);
  const std::size_t rows = read_dimension(r);
  const std::size_t cols = read_dimension(r);
  const std::size_t at = r.offset();
  if (r.u64() != rows * cols) throw WireError("matrix element count mismatch", at);
  Fnv1a h;
  h.u64(rows).u64(cols);
  for (std::size_t i = 0; i < rows * cols; ++i) h.f64(r.f64());
  return h.digest();
}

}  // namespace mpqls::wire
