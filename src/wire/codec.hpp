// Binary codec for the service's job API: SolveRequest, SolveResult and
// raw matrix payloads map directly to/from length-prefixed frames
// (wire/frame.hpp) with no intermediate JSON tree. Field-for-field parity
// with service/json_io is a test invariant (round-trip tests cross-check
// the two), and both front doors enforce the same service/limits.hpp caps.
//
// The request payload intentionally supports only what the binary path is
// for — an explicit dense matrix or a matrix_ref, plus explicit RHS
// vectors. Scenario generators and RHS synthesis stay JSON-only
// conveniences.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "linalg/matrix.hpp"
#include "service/request.hpp"
#include "wire/frame.hpp"  // WireError, frame constants (callers catch/inspect)

namespace mpqls::wire {

/// Content-Type value that selects this codec on the daemon routes.
inline constexpr const char* kContentType = "application/x-mpqls-frame";

/// True when a Content-Type header value names the frame codec
/// (parameters after ';' are ignored, match is case-insensitive).
bool is_frame_content_type(std::string_view value);

// --- requests --------------------------------------------------------------

/// Encode with the matrix inline (dense) or, when request.matrix_ref is
/// nonzero, as the 8-byte reference.
std::string encode_request(const service::SolveRequest& request);

/// Decode a kSolveRequest frame. A by-ref payload needs `resolve` to
/// produce the matrix (the daemon passes a store lookup); without one the
/// request is returned unresolved (matrix_ref set, empty matrix) and RHS
/// dimensions are only checked for mutual consistency.
service::SolveRequest decode_request(std::string_view frame,
                                     const service::MatrixResolver& resolve = {});

/// Header + id peek only: the matrix_ref of a by-ref request frame,
/// std::nullopt for an inline one. Cheap enough for the admission path
/// (no payload decode); throws WireError if even the prefix is malformed.
std::optional<std::uint64_t> peek_request_matrix_ref(std::string_view frame);

/// The client trace id of a request frame without decoding the body: v3
/// appended it as the final 16 payload bytes, so this is a
/// fixed-offset-from-the-end read. Zero for v2 frames (which predate the
/// field) and for v3 frames whose client supplied none — the front door
/// mints an id in both cases.
trace::TraceId peek_request_trace(std::string_view frame);

/// Routing key for a request frame without materializing it: the
/// matrix_ref if present, otherwise the content hash
/// (service::hash_matrix) streamed over the inline matrix bytes. By-ref
/// submits and the uploads that created the ref therefore key identically
/// on the cluster ring.
std::uint64_t request_affinity_key(std::string_view frame);

// --- results ---------------------------------------------------------------

std::string encode_result(const service::SolveResult& result);
service::SolveResult decode_result(std::string_view frame);

// --- matrices (PUT /v1/matrices payload) -----------------------------------

std::string encode_matrix(const linalg::Matrix<double>& A);
linalg::Matrix<double> decode_matrix(std::string_view frame);

/// Content hash (identical to service::hash_matrix of the decoded matrix)
/// streamed straight off a kMatrix frame — what the coordinator routes
/// uploads by without building the 128 MiB matrix.
std::uint64_t hash_matrix_frame(std::string_view frame);

// --- shard exchanges (POST /v1/shard/exchange payload) ----------------------

/// One rank's half of a pairwise amplitude swap inside a distributed
/// shard-group solve: which group, which sender rank, which exchange
/// sequence slot, and the raw amplitude block (opaque bytes — the
/// receiving executor knows the element type and count from its own plan).
struct ShardExchange {
  std::uint64_t group = 0;
  std::uint32_t from = 0;
  std::uint64_t seq = 0;
  std::string payload;
};

std::string encode_shard_exchange(std::uint64_t group, std::uint32_t from, std::uint64_t seq,
                                  std::string_view payload);
ShardExchange decode_shard_exchange(std::string_view frame);

}  // namespace mpqls::wire
