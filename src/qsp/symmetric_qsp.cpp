#include "qsp/symmetric_qsp.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/lbfgs.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace mpqls::qsp {

namespace {

using c64 = std::complex<double>;

// 2x2 product helpers kept open-coded: this is the inner loop of the
// whole phase-finding pipeline.
struct M2 {
  c64 a, b, c, d;  // [[a, b], [c, d]]
};

inline M2 mul(const M2& x, const M2& y) {
  return {x.a * y.a + x.b * y.c, x.a * y.b + x.b * y.d,
          x.c * y.a + x.d * y.c, x.c * y.b + x.d * y.d};
}

inline M2 w_matrix(double x) {
  const double s = std::sqrt(std::fmax(0.0, 1.0 - x * x));
  return {c64(x, 0), c64(0, s), c64(0, s), c64(x, 0)};
}

inline M2 z_phase(double phi) {
  return {std::exp(c64(0, phi)), 0, 0, std::exp(c64(0, -phi))};
}

M2 qsp_matrix(const std::vector<double>& phases, double x) {
  expects(!phases.empty(), "qsp needs at least one phase");
  const M2 w = w_matrix(x);
  M2 u = z_phase(phases[0]);
  for (std::size_t j = 1; j < phases.size(); ++j) {
    u = mul(u, mul(w, z_phase(phases[j])));
  }
  return u;
}

}  // namespace

Su2 qsp_unitary(const std::vector<double>& phases, double x) {
  const M2 u = qsp_matrix(phases, x);
  return {u.a, u.b, u.c, u.d};
}

double qsp_response(const std::vector<double>& phases, double x) {
  return qsp_matrix(phases, x).a.imag();
}

std::vector<double> response_cheb_coeffs(const std::vector<double>& phases, int degree) {
  const int n = degree + 1;
  std::vector<double> g(n);
  const std::int64_t nn = n;
#pragma omp parallel for if (nn >= 64)
  for (std::int64_t j = 0; j < nn; ++j) {
    g[static_cast<std::size_t>(j)] = qsp_response(phases, std::cos(M_PI * (j + 0.5) / n));
  }
  std::vector<double> coeffs(n);
#pragma omp parallel for if (nn >= 256)
  for (std::int64_t k = 0; k < nn; ++k) {
    double s = 0.0;
    for (int j = 0; j < n; ++j) s += g[j] * std::cos(M_PI * k * (j + 0.5) / n);
    coeffs[static_cast<std::size_t>(k)] = (k == 0 ? 1.0 : 2.0) * s / n;
  }
  return coeffs;
}

namespace {

struct ReducedProblem {
  int d = 0;                    ///< polynomial degree
  int m = 0;                    ///< reduced unknowns
  bool has_middle = false;      ///< d even: phi_{d/2} unpaired
  std::vector<double> nodes;    ///< m positive reduced Chebyshev nodes
  std::vector<double> f_nodes;  ///< target values at the nodes
  std::vector<double> c;        ///< target coeffs of T_{d-2k}, k = 0..m-1
  std::vector<double> weight;   ///< linearization weight (2, or 1 for middle)
};

std::vector<double> full_phases(const ReducedProblem& p, const std::vector<double>& psi) {
  std::vector<double> phi(static_cast<std::size_t>(p.d) + 1, 0.0);
  for (int k = 0; k < p.m; ++k) {
    phi[static_cast<std::size_t>(k)] = psi[static_cast<std::size_t>(k)];
    phi[static_cast<std::size_t>(p.d - k)] = psi[static_cast<std::size_t>(k)];
  }
  return phi;
}

ReducedProblem make_problem(const poly::ChebSeries& target) {
  ReducedProblem p;
  const auto& coeffs = target.coeffs();
  p.d = target.degree();
  expects(p.d >= 1, "symmetric QSP: degree >= 1 required");
  p.m = p.d / 2 + 1;
  p.has_middle = (p.d % 2 == 0);
  p.nodes.resize(p.m);
  p.f_nodes.resize(p.m);
  p.c.resize(p.m);
  p.weight.assign(p.m, 2.0);
  if (p.has_middle) p.weight[static_cast<std::size_t>(p.m - 1)] = 1.0;
  for (int k = 0; k < p.m; ++k) {
    // Reduced positive Chebyshev nodes of [13]: x_k = cos((2k+1) pi / (4m)).
    p.nodes[static_cast<std::size_t>(k)] = std::cos((2.0 * k + 1.0) * M_PI / (4.0 * p.m));
    const int order = p.d - 2 * k;
    p.c[static_cast<std::size_t>(k)] = coeffs[static_cast<std::size_t>(order)];
  }
  for (int k = 0; k < p.m; ++k) {
    p.f_nodes[static_cast<std::size_t>(k)] = target.evaluate(p.nodes[static_cast<std::size_t>(k)]);
  }
  return p;
}

double node_residual(const ReducedProblem& p, const std::vector<double>& phi,
                     std::vector<double>* out_gap = nullptr) {
  double worst = 0.0;
  if (out_gap != nullptr) out_gap->resize(static_cast<std::size_t>(p.m));
  for (int k = 0; k < p.m; ++k) {
    const double g = qsp_response(phi, p.nodes[static_cast<std::size_t>(k)]);
    const double gap = p.f_nodes[static_cast<std::size_t>(k)] - g;
    if (out_gap != nullptr) (*out_gap)[static_cast<std::size_t>(k)] = gap;
    worst = std::fmax(worst, std::fabs(gap));
  }
  return worst;
}

// d(response)/d(phi_j) at x, for all j, via prefix/suffix products:
// dU/dphi_j = A_j (iZ) B_j with A_j the product up to and including
// e^{i phi_j Z} and B_j the remainder. d Im(U00)/d phi_j = Re[(A_j Z B_j)00]
// ... note (iZ) contributes i * (A Z B)00 and Im(i w) = Re(w).
void response_gradient(const std::vector<double>& phi, double x, std::vector<double>& grad) {
  const std::size_t n = phi.size();
  grad.resize(n);
  const M2 w = w_matrix(x);
  // prefix[j] = e^{i phi_0 Z} W e^{i phi_1 Z} ... W e^{i phi_j Z}
  std::vector<M2> prefix(n);
  prefix[0] = z_phase(phi[0]);
  for (std::size_t j = 1; j < n; ++j) prefix[j] = mul(prefix[j - 1], mul(w, z_phase(phi[j])));
  // suffix[j] = W e^{i phi_{j+1} Z} ... W e^{i phi_d Z}; suffix[d] = I.
  std::vector<M2> suffix(n);
  suffix[n - 1] = {1, 0, 0, 1};
  for (std::size_t j = n - 1; j-- > 0;) suffix[j] = mul(mul(w, z_phase(phi[j + 1])), suffix[j]);
  for (std::size_t j = 0; j < n; ++j) {
    const M2& a = prefix[j];
    const M2& b = suffix[j];
    // (A Z B)00 = a00 b00 - a01 b10  (Z = diag(1,-1)).
    const c64 azb = a.a * b.a - a.b * b.c;
    grad[j] = azb.real();
  }
}

}  // namespace

SymQspResult solve_symmetric_qsp(const poly::ChebSeries& target, const SymQspOptions& opts) {
  expects(target.parity() != poly::Parity::kNone,
          "symmetric QSP target must have definite parity");
  expects(target.max_abs_on(-1.0, 1.0) < 1.0, "symmetric QSP target must satisfy |f| < 1");

  ReducedProblem p = make_problem(target);
  SymQspResult res;

  // --- Stage 1: fixed-point iteration on the coefficient map -------------
  std::vector<double> psi(static_cast<std::size_t>(p.m));
  for (int k = 0; k < p.m; ++k) {
    psi[static_cast<std::size_t>(k)] = p.c[static_cast<std::size_t>(k)] /
                                       p.weight[static_cast<std::size_t>(k)];
  }
  double best_residual = node_residual(p, full_phases(p, psi));
  std::vector<double> best_psi = psi;

  int stall = 0;
  for (int it = 0; it < opts.max_fpi_iterations; ++it) {
    const auto phi = full_phases(p, psi);
    const auto coeffs = response_cheb_coeffs(phi, p.d);
    double delta = 0.0;
    for (int k = 0; k < p.m; ++k) {
      const double fk = coeffs[static_cast<std::size_t>(p.d - 2 * k)];
      const double gap = p.c[static_cast<std::size_t>(k)] - fk;
      psi[static_cast<std::size_t>(k)] += gap / p.weight[static_cast<std::size_t>(k)];
      delta = std::fmax(delta, std::fabs(gap));
    }
    res.fpi_iterations = it + 1;
    const double r = node_residual(p, full_phases(p, psi));
    if (r < 0.9 * best_residual) {
      stall = 0;
    } else {
      ++stall;
    }
    if (r < best_residual) {
      best_residual = r;
      best_psi = psi;
    }
    if (delta < opts.tolerance) break;
    // FPI only contracts for small ||c||_1 (Dong et al.); once it stops
    // making progress, hand the best iterate to Newton instead of burning
    // the full iteration budget.
    if (stall >= 10) break;
  }
  psi = best_psi;
  res.method = "fpi";
  res.residual = best_residual;

  // --- Stage 2: Newton on the collocation map ------------------------------
  if (best_residual >= opts.tolerance && opts.enable_newton) {
    std::vector<double> gap;
    std::vector<double> grad;
    for (int it = 0; it < opts.max_newton_iterations; ++it) {
      const auto phi = full_phases(p, psi);
      const double r = node_residual(p, phi, &gap);
      if (r < best_residual) {
        best_residual = r;
        best_psi = psi;
      }
      if (r < opts.tolerance) break;
      // J_{k,l} = d g(x_k) / d psi_l = d/d phi_l + d/d phi_{d-l}.
      linalg::Matrix<double> J(static_cast<std::size_t>(p.m), static_cast<std::size_t>(p.m));
      for (int k = 0; k < p.m; ++k) {
        response_gradient(phi, p.nodes[static_cast<std::size_t>(k)], grad);
        for (int l = 0; l < p.m; ++l) {
          double v = grad[static_cast<std::size_t>(l)];
          if (l != p.d - l) v += grad[static_cast<std::size_t>(p.d - l)];
          J(static_cast<std::size_t>(k), static_cast<std::size_t>(l)) = v;
        }
      }
      const auto f = linalg::lu_factor(J);
      if (f.singular) break;
      const auto step = linalg::lu_solve(f, gap);
      for (int l = 0; l < p.m; ++l) psi[static_cast<std::size_t>(l)] += step[static_cast<std::size_t>(l)];
      res.newton_iterations = it + 1;
    }
    const double r = node_residual(p, full_phases(p, psi));
    if (r < best_residual) {
      best_residual = r;
      best_psi = psi;
    }
    psi = best_psi;
    if (res.newton_iterations > 0) res.method = "newton";
    res.residual = best_residual;
  }

  // --- Stage 3: L-BFGS on the least-squares objective (rescue only) -------
  if (best_residual >= std::fmax(opts.tolerance, opts.lbfgs_threshold) &&
      opts.enable_lbfgs) {
    auto objective = [&p](const std::vector<double>& psi_v, std::vector<double>& g_out) {
      const auto phi = full_phases(p, psi_v);
      g_out.assign(psi_v.size(), 0.0);
      double val = 0.0;
      std::vector<double> grad;
      for (int k = 0; k < p.m; ++k) {
        const double x = p.nodes[static_cast<std::size_t>(k)];
        const double gap = qsp_response(phi, x) - p.f_nodes[static_cast<std::size_t>(k)];
        val += 0.5 * gap * gap;
        response_gradient(phi, x, grad);
        for (int l = 0; l < p.m; ++l) {
          double v = grad[static_cast<std::size_t>(l)];
          if (l != p.d - l) v += grad[static_cast<std::size_t>(p.d - l)];
          g_out[static_cast<std::size_t>(l)] += gap * v;
        }
      }
      return val;
    };
    LbfgsOptions lopts;
    lopts.max_iterations = opts.max_lbfgs_iterations;
    lopts.gradient_tolerance = 1e-14;
    const auto lr = lbfgs_minimize(objective, psi, lopts);
    const double r = node_residual(p, full_phases(p, lr.x));
    if (r < best_residual) {
      best_residual = r;
      best_psi = lr.x;
      res.method = "lbfgs";
    }
  }

  res.phases = full_phases(p, best_psi);
  res.residual = best_residual;
  // 1e-9 on the response is far below any eps_l the solver requests; the
  // exact residual is reported for callers with stricter needs.
  res.converged = best_residual < std::fmax(opts.tolerance, 1e-9);
  return res;
}

}  // namespace mpqls::qsp
