// Quantum signal processing phase factors for symmetric QSP (the paper's
// reference [13]: Dong, Lin, Ni, Wang, SIAM J. Sci. Comput. 2024).
//
// Convention (Wx): U_Phi(x) = e^{i phi_0 Z} prod_{j=1..d} [ W(x) e^{i phi_j Z} ]
// with W(x) = [[x, i sqrt(1-x^2)], [i sqrt(1-x^2), x]]. For a symmetric
// phase vector (phi_j = phi_{d-j}) the imaginary part of <0|U_Phi|0> is a
// degree-d polynomial of parity d mod 2; the solver below finds Phi such
// that Im<0|U_Phi|0> equals a given target Chebyshev series.
//
// Solver strategy (mirrors [13]):
//  1. fixed-point iteration on the Chebyshev-coefficient map (linear cost,
//     converges for small ||c||_1),
//  2. Newton's method on the collocation map at the reduced Chebyshev
//     nodes (quadratic convergence, robust up to ||f||_inf -> 1),
//  3. L-BFGS on the collocation least-squares objective as a last resort.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "poly/chebyshev.hpp"

namespace mpqls::qsp {

/// 2x2 unitary of the QSP sequence at scalar signal x in [-1, 1].
struct Su2 {
  std::complex<double> u00, u01, u10, u11;
};
Su2 qsp_unitary(const std::vector<double>& phases, double x);

/// Im <0|U_Phi(x)|0> — the polynomial a symmetric phase vector encodes.
double qsp_response(const std::vector<double>& phases, double x);

/// All Chebyshev coefficients (orders 0..degree) of x -> qsp_response(x),
/// computed by Gauss-Chebyshev quadrature at degree+1 nodes (exact for the
/// polynomial response).
std::vector<double> response_cheb_coeffs(const std::vector<double>& phases, int degree);

struct SymQspOptions {
  int max_fpi_iterations = 500;
  int max_newton_iterations = 30;
  double tolerance = 1e-11;  ///< on max residual over reduced nodes
  bool enable_newton = true;
  /// L-BFGS is a rescue stage for targets the other two cannot crack; it
  /// only engages when the residual is still above `lbfgs_threshold`.
  bool enable_lbfgs = true;
  double lbfgs_threshold = 1e-7;
  int max_lbfgs_iterations = 500;
};

struct SymQspResult {
  std::vector<double> phases;  ///< full symmetric vector, length degree+1
  double residual = 0.0;       ///< max |response - target| at reduced nodes
  int fpi_iterations = 0;
  int newton_iterations = 0;
  std::string method;          ///< "fpi", "newton", or "lbfgs"
  bool converged = false;
};

/// Find symmetric phases encoding `target` (definite parity, max|f| < 1).
SymQspResult solve_symmetric_qsp(const poly::ChebSeries& target,
                                 const SymQspOptions& opts = {});

}  // namespace mpqls::qsp
