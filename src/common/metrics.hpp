// Prometheus text-exposition writer (format 0.0.4) for the daemon's
// /v1/metrics endpoint: turns the service's counters — cache hits/misses,
// queue depth, per-stage wall clock, compiled-program stats — into the
// `# HELP` / `# TYPE` / sample-line format every metrics scraper speaks.
// Header-only and allocation-light; a fresh writer is built per scrape so
// values are a consistent snapshot.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

#include "common/contracts.hpp"

namespace mpqls {

class MetricsWriter {
 public:
  using Label = std::pair<std::string_view, std::string_view>;

  /// Monotone cumulative value (requests served, seconds spent, ...).
  void counter(std::string_view name, std::string_view help, double value,
               std::initializer_list<Label> labels = {}) {
    sample(name, help, "counter", value, labels);
  }
  void counter(std::string_view name, std::string_view help, std::uint64_t value,
               std::initializer_list<Label> labels = {}) {
    sample(name, help, "counter", static_cast<double>(value), labels);
  }

  /// Point-in-time value (queue depth, resident contexts, ...).
  void gauge(std::string_view name, std::string_view help, double value,
             std::initializer_list<Label> labels = {}) {
    sample(name, help, "gauge", value, labels);
  }
  void gauge(std::string_view name, std::string_view help, std::uint64_t value,
             std::initializer_list<Label> labels = {}) {
    sample(name, help, "gauge", static_cast<double>(value), labels);
  }

  /// Append pre-rendered exposition text verbatim (e.g. another
  /// endpoint's already-labeled families, merged by the cluster
  /// coordinator). Resets the preamble tracker so a family emitted after
  /// the raw block gets its own HELP/TYPE again.
  void raw(std::string_view text) {
    out_ += text;
    if (!out_.empty() && out_.back() != '\n') out_ += '\n';
    last_name_.clear();
  }

  const std::string& str() const { return out_; }

 private:
  void sample(std::string_view name, std::string_view help, std::string_view type, double value,
              std::initializer_list<Label> labels) {
    // HELP/TYPE preamble once per metric family; labelled series of one
    // family arrive consecutively, so comparing against the previous name
    // is enough.
    if (name != last_name_) {
      out_ += "# HELP ";
      out_ += name;
      out_ += ' ';
      out_ += help;
      out_ += "\n# TYPE ";
      out_ += name;
      out_ += ' ';
      out_ += type;
      out_ += '\n';
      last_name_.assign(name);
    }
    out_ += name;
    if (labels.size() > 0) {
      out_ += '{';
      bool first = true;
      for (const auto& [k, v] : labels) {
        if (!first) out_ += ',';
        first = false;
        out_ += k;
        out_ += "=\"";
        for (char c : v) {  // escape per the exposition format
          if (c == '\\' || c == '"') out_ += '\\';
          if (c == '\n') {
            out_ += "\\n";
            continue;
          }
          out_ += c;
        }
        out_ += '"';
      }
      out_ += '}';
    }
    out_ += ' ';
    write_value(value);
    out_ += '\n';
  }

  void write_value(double value) {
    expects(!std::isnan(value), "metrics: NaN sample");
    // Integral values print without exponent/fraction so counters read
    // naturally; everything else uses shortest-round-trip formatting.
    char buf[32];
    if (value == std::floor(value) && std::abs(value) < 0x1p63) {
      const auto res =
          std::to_chars(buf, buf + sizeof buf, static_cast<std::int64_t>(value));
      out_.append(buf, res.ptr);
    } else {
      const auto res = std::to_chars(buf, buf + sizeof buf, value);
      out_.append(buf, res.ptr);
    }
  }

  std::string out_;
  std::string last_name_;
};

}  // namespace mpqls
