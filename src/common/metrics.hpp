// Prometheus text-exposition writer (format 0.0.4) for the daemon's
// /v1/metrics endpoint: turns the service's counters — cache hits/misses,
// queue depth, per-stage wall clock, compiled-program stats — into the
// `# HELP` / `# TYPE` / sample-line format every metrics scraper speaks.
// Header-only and allocation-light; a fresh writer is built per scrape so
// values are a consistent snapshot.
#pragma once

#include <array>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/contracts.hpp"

namespace mpqls {

/// Canonical rendering of a histogram `le` bound. Every emit site MUST
/// go through this helper: Prometheus matches bucket series by the
/// literal label string, so "0.01" and "1e-02" would be two different
/// buckets of the same family. Shortest-round-trip `std::to_chars` is
/// the canon (never the integral shortcut `write_value` applies to
/// sample values); +Inf renders as the exposition-format "+Inf".
inline std::string format_le(double bound) {
  if (std::isinf(bound)) return "+Inf";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, bound);
  return std::string(buf, res.ptr);
}

/// Fixed-bucket latency histogram: lock-free `observe()`, rendered by
/// `MetricsWriter::histogram()` as the Prometheus `_bucket`/`_sum`/
/// `_count` family. Bounds are exponential from 10 µs to 30 s — wide
/// enough to cover HTTP admission (~µs) through gate-level solves (~s)
/// with one shared shape, so every `mpqls_latency_seconds` stage series
/// has identical `le` labels.
class Histogram {
 public:
  static constexpr std::array<double, 14> kBounds = {
      1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0};

  void observe(double value) {
    std::size_t bucket = kBounds.size();  // overflow bucket (+Inf)
    for (std::size_t i = 0; i < kBounds.size(); ++i) {
      if (value <= kBounds[i]) {
        bucket = i;
        break;
      }
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
    }
  }

  /// Non-cumulative count of observations in bucket `i` (the +Inf
  /// overflow bucket is index `kBounds.size()`).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<std::uint64_t>, kBounds.size() + 1> counts_{};
  std::atomic<double> sum_{0.0};
};

class MetricsWriter {
 public:
  using Label = std::pair<std::string_view, std::string_view>;

  /// Monotone cumulative value (requests served, seconds spent, ...).
  void counter(std::string_view name, std::string_view help, double value,
               std::initializer_list<Label> labels = {}) {
    sample(name, help, "counter", value, labels);
  }
  void counter(std::string_view name, std::string_view help, std::uint64_t value,
               std::initializer_list<Label> labels = {}) {
    sample(name, help, "counter", static_cast<double>(value), labels);
  }

  /// Point-in-time value (queue depth, resident contexts, ...).
  void gauge(std::string_view name, std::string_view help, double value,
             std::initializer_list<Label> labels = {}) {
    sample(name, help, "gauge", value, labels);
  }
  void gauge(std::string_view name, std::string_view help, std::uint64_t value,
             std::initializer_list<Label> labels = {}) {
    sample(name, help, "gauge", static_cast<double>(value), labels);
  }

  /// Emit one histogram series: cumulative `_bucket` lines (le labels
  /// via `format_le`), the `+Inf` bucket, `_sum`, and `_count`. The
  /// HELP/TYPE preamble is written once per family, so stage-labelled
  /// series of one family must arrive consecutively (same contract as
  /// counters/gauges).
  void histogram(std::string_view name, std::string_view help, const Histogram& hist,
                 std::initializer_list<Label> labels = {}) {
    preamble(name, help, "histogram");
    std::string bucket_name(name);
    bucket_name += "_bucket";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBounds.size(); ++i) {
      cumulative += hist.bucket_count(i);
      const std::string le = format_le(Histogram::kBounds[i]);
      line(bucket_name, labels, Label{"le", le}, static_cast<double>(cumulative));
    }
    cumulative += hist.bucket_count(Histogram::kBounds.size());
    const std::string inf = format_le(std::numeric_limits<double>::infinity());
    line(bucket_name, labels, Label{"le", inf}, static_cast<double>(cumulative));
    std::string sum_name(name);
    sum_name += "_sum";
    line(sum_name, labels, std::nullopt, hist.sum());
    std::string count_name(name);
    count_name += "_count";
    line(count_name, labels, std::nullopt, static_cast<double>(cumulative));
  }

  /// Append pre-rendered exposition text verbatim (e.g. another
  /// endpoint's already-labeled families, merged by the cluster
  /// coordinator). Resets the preamble tracker so a family emitted after
  /// the raw block gets its own HELP/TYPE again.
  void raw(std::string_view text) {
    out_ += text;
    if (!out_.empty() && out_.back() != '\n') out_ += '\n';
    last_name_.clear();
  }

  const std::string& str() const { return out_; }

 private:
  void sample(std::string_view name, std::string_view help, std::string_view type, double value,
              std::initializer_list<Label> labels) {
    preamble(name, help, type);
    line(name, labels, std::nullopt, value);
  }

  // HELP/TYPE once per metric family; labelled series of one family
  // arrive consecutively, so comparing against the previous name is
  // enough.
  void preamble(std::string_view name, std::string_view help, std::string_view type) {
    if (name == last_name_) return;
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    out_ += help;
    out_ += "\n# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
    last_name_.assign(name);
  }

  // One sample line. `extra` (the histogram `le` label) is appended
  // after the caller's labels.
  void line(std::string_view name, std::initializer_list<Label> labels,
            std::optional<Label> extra, double value) {
    out_ += name;
    if (labels.size() > 0 || extra) {
      out_ += '{';
      bool first = true;
      auto emit = [&](const Label& label) {
        if (!first) out_ += ',';
        first = false;
        out_ += label.first;
        out_ += "=\"";
        for (char c : label.second) {  // escape per the exposition format
          if (c == '\\' || c == '"') out_ += '\\';
          if (c == '\n') {
            out_ += "\\n";
            continue;
          }
          out_ += c;
        }
        out_ += '"';
      };
      for (const auto& label : labels) emit(label);
      if (extra) emit(*extra);
      out_ += '}';
    }
    out_ += ' ';
    write_value(value);
    out_ += '\n';
  }

  void write_value(double value) {
    expects(!std::isnan(value), "metrics: NaN sample");
    // Integral values print without exponent/fraction so counters read
    // naturally; everything else uses shortest-round-trip formatting.
    char buf[32];
    if (value == std::floor(value) && std::abs(value) < 0x1p63) {
      const auto res =
          std::to_chars(buf, buf + sizeof buf, static_cast<std::int64_t>(value));
      out_.append(buf, res.ptr);
    } else {
      const auto res = std::to_chars(buf, buf + sizeof buf, value);
      out_.append(buf, res.ptr);
    }
  }

  std::string out_;
  std::string last_name_;
};

}  // namespace mpqls
