#include "common/special.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace mpqls {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  expects(k <= n, "log_binomial requires k <= n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

namespace {

// Continued fraction for the incomplete beta function (Lentz's method).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3e-16;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  expects(a > 0.0 && b > 0.0, "incomplete_beta requires a,b > 0");
  expects(x >= 0.0 && x <= 1.0, "incomplete_beta requires x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // The continued fraction converges rapidly for x < (a+1)/(a+b+2);
  // otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double binomial_tail_half(std::uint64_t n, std::int64_t k) {
  if (k <= 0) return 1.0;
  if (static_cast<std::uint64_t>(k) > n) return 0.0;
  const double a = static_cast<double>(k);
  const double b = static_cast<double>(n - static_cast<std::uint64_t>(k)) + 1.0;
  return incomplete_beta(a, b, 0.5);
}

}  // namespace mpqls
