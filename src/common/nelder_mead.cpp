#include "common/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace mpqls {

NelderMeadResult nelder_mead_minimize(const std::function<double(const std::vector<double>&)>& f,
                                      std::vector<double> x0, const NelderMeadOptions& opts) {
  expects(!x0.empty(), "nelder_mead: empty start point");
  const std::size_t n = x0.size();

  // Standard coefficients: reflection, expansion, contraction, shrink.
  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;

  NelderMeadResult res;
  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += opts.initial_step;
  std::vector<double> fx(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    fx[i] = f(simplex[i]);
    ++res.evaluations;
  }

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n), candidate(n);
  while (res.evaluations < opts.max_evaluations) {
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&fx](std::size_t a, std::size_t b) { return fx[a] < fx[b]; });
    const std::size_t best = order[0], worst = order[n], second_worst = order[n - 1];
    if (std::fabs(fx[worst] - fx[best]) <= opts.tolerance * (std::fabs(fx[best]) + 1e-12)) {
      res.converged = true;
      break;
    }

    // Centroid of all points but the worst.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (auto& c : centroid) c /= static_cast<double>(n);

    auto point_at = [&](double coeff) {
      for (std::size_t j = 0; j < n; ++j) {
        candidate[j] = centroid[j] + coeff * (centroid[j] - simplex[worst][j]);
      }
      return f(candidate);
    };

    const double f_reflect = point_at(kAlpha);
    ++res.evaluations;
    if (f_reflect < fx[order[0]]) {
      const auto reflected = candidate;
      const double f_expand = point_at(kAlpha * kGamma);
      ++res.evaluations;
      if (f_expand < f_reflect) {
        simplex[worst] = candidate;
        fx[worst] = f_expand;
      } else {
        simplex[worst] = reflected;
        fx[worst] = f_reflect;
      }
    } else if (f_reflect < fx[second_worst]) {
      simplex[worst] = candidate;
      fx[worst] = f_reflect;
    } else {
      const double f_contract = point_at(-kRho);
      ++res.evaluations;
      if (f_contract < fx[worst]) {
        simplex[worst] = candidate;
        fx[worst] = f_contract;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t j = 0; j < n; ++j) {
            simplex[i][j] = simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
          }
          fx[i] = f(simplex[i]);
          ++res.evaluations;
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (fx[i] < fx[best]) best = i;
  }
  res.x = simplex[best];
  res.fx = fx[best];
  return res;
}

}  // namespace mpqls
