// Wall-clock timing helper for benchmarks and telemetry.
#pragma once

#include <chrono>

namespace mpqls {

/// Monotonic stopwatch. Starts on construction; `seconds()` reads the
/// elapsed time without stopping.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mpqls
