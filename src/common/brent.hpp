// Brent's derivative-free 1-D algorithms (R. P. Brent, "Algorithms for
// Minimization without Derivatives", 1973). The paper's Remark 2 uses
// Brent's method for the de-normalization step that recovers ||x|| from the
// sampled quantum state.
#pragma once

#include <functional>

namespace mpqls {

/// Result of a 1-D search.
struct BrentResult {
  double x = 0.0;        ///< abscissa of the minimum / root
  double fx = 0.0;       ///< function value there
  int iterations = 0;    ///< iterations used
  bool converged = false;
};

/// Minimize f over [a, b] to absolute x-tolerance `tol` using Brent's
/// combination of golden-section and successive parabolic interpolation.
BrentResult brent_minimize(const std::function<double(double)>& f, double a, double b,
                           double tol = 1e-12, int max_iter = 200);

/// Find a root of f in [a, b] (f(a) and f(b) must bracket a sign change)
/// with Brent's combination of bisection, secant and inverse quadratic
/// interpolation.
BrentResult brent_root(const std::function<double(double)>& f, double a, double b,
                       double tol = 1e-14, int max_iter = 200);

}  // namespace mpqls
