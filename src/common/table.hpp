// Minimal fixed-width table printer used by the benchmark harnesses to
// emit the rows/series of the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpqls {

/// Collects rows of string cells and prints them with aligned columns.
/// Numeric formatting is the caller's responsibility (use `fmt_sci` /
/// `fmt_fix` below for consistency across benches).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Scientific notation with `digits` significant digits, e.g. 1.23e-05.
std::string fmt_sci(double v, int digits = 3);
/// Fixed notation with `digits` decimals.
std::string fmt_fix(double v, int digits = 3);
/// Integer with thousands separators, e.g. 1,234,567.
std::string fmt_int(unsigned long long v);

}  // namespace mpqls
