// Multinomial sampling against a precomputed cumulative distribution: one
// O(n) prefix-sum pass by the caller, O(log n) per draw here. Shared by the
// statevector readout and the QSVT shot-noise model so the edge handling
// (scaling by the total mass, end-of-range fallback) lives in one place.
//
// `CdfSampler` is the reusable handle: build it once from a distribution
// that is not changing (e.g. a statevector between gates) and draw any
// number of shots without re-paying the O(n) pass per call.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mpqls {

/// One draw against inclusive prefix sums (binary search; no copy).
inline std::size_t draw_from_cdf(const std::vector<double>& cdf, Xoshiro256& rng) {
  expects(!cdf.empty(), "draw_from_cdf: empty distribution");
  const double u = rng.uniform() * cdf.back();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return (it == cdf.end()) ? cdf.size() - 1 : static_cast<std::size_t>(it - cdf.begin());
}

/// Reusable sampling handle over inclusive prefix sums. The total mass
/// (cdf.back()) need not be 1; draws are scaled by it.
class CdfSampler {
 public:
  CdfSampler() = default;

  /// Takes inclusive prefix sums of the (non-negative) weights.
  explicit CdfSampler(std::vector<double> cdf) : cdf_(std::move(cdf)) {
    expects(!cdf_.empty(), "CdfSampler: empty distribution");
  }

  /// Build from raw weights (one prefix-sum pass).
  static CdfSampler from_weights(const std::vector<double>& weights) {
    expects(!weights.empty(), "CdfSampler: empty distribution");
    std::vector<double> cdf(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      cdf[i] = acc;
    }
    return CdfSampler(std::move(cdf));
  }

  bool empty() const { return cdf_.empty(); }
  std::size_t size() const { return cdf_.size(); }

  /// Draw one index.
  std::size_t draw(Xoshiro256& rng) const { return draw_from_cdf(cdf_, rng); }

  /// Draw `shots` indices (identical to `shots` sequential single draws).
  std::vector<std::size_t> draw(Xoshiro256& rng, std::uint64_t shots) const {
    std::vector<std::size_t> outcomes(shots);
    for (auto& o : outcomes) o = draw(rng);
    return outcomes;
  }

 private:
  std::vector<double> cdf_;
};

/// Draw `shots` indices from the distribution whose inclusive prefix sums
/// are `cdf` (cdf.back() is the total mass; it need not be 1). One-shot
/// convenience over CdfSampler for callers that do not reuse the handle.
inline std::vector<std::size_t> sample_from_cdf(const std::vector<double>& cdf, Xoshiro256& rng,
                                                std::uint64_t shots) {
  std::vector<std::size_t> outcomes(shots);
  for (auto& o : outcomes) o = draw_from_cdf(cdf, rng);
  return outcomes;
}

}  // namespace mpqls
