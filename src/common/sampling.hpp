// Multinomial sampling against a precomputed cumulative distribution: one
// O(n) prefix-sum pass by the caller, O(log n) per draw here. Shared by the
// statevector readout and the QSVT shot-noise model so the edge handling
// (scaling by the total mass, end-of-range fallback) lives in one place.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mpqls {

/// Draw `shots` indices from the distribution whose inclusive prefix sums
/// are `cdf` (cdf.back() is the total mass; it need not be 1).
inline std::vector<std::size_t> sample_from_cdf(const std::vector<double>& cdf, Xoshiro256& rng,
                                                std::uint64_t shots) {
  expects(!cdf.empty(), "sample_from_cdf: empty distribution");
  const double total = cdf.back();
  std::vector<std::size_t> outcomes(shots);
  for (auto& o : outcomes) {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    o = (it == cdf.end()) ? cdf.size() - 1 : static_cast<std::size_t>(it - cdf.begin());
  }
  return outcomes;
}

}  // namespace mpqls
