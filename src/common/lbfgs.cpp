#include "common/lbfgs.hpp"

#include <cmath>
#include <deque>

#include "common/contracts.hpp"

namespace mpqls {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

LbfgsResult lbfgs_minimize(
    const std::function<double(const std::vector<double>&, std::vector<double>&)>& value_and_grad,
    std::vector<double> x0, const LbfgsOptions& opts) {
  expects(!x0.empty(), "lbfgs needs a nonempty start point");
  const std::size_t n = x0.size();

  LbfgsResult res;
  std::vector<double> x = std::move(x0);
  std::vector<double> g(n), g_new(n), x_new(n), direction(n);
  double fx = value_and_grad(x, g);

  // History of s = x_{k+1} - x_k and y = g_{k+1} - g_k.
  std::deque<std::vector<double>> s_hist, y_hist;
  std::deque<double> rho_hist;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    const double gnorm = norm2(g);
    if (gnorm <= opts.gradient_tolerance) {
      res.converged = true;
      res.iterations = iter;
      break;
    }

    // Two-loop recursion for the search direction -H*g.
    direction = g;
    std::vector<double> alpha(s_hist.size());
    for (std::size_t i = s_hist.size(); i-- > 0;) {
      alpha[i] = rho_hist[i] * dot(s_hist[i], direction);
      for (std::size_t j = 0; j < n; ++j) direction[j] -= alpha[i] * y_hist[i][j];
    }
    if (!s_hist.empty()) {
      const double gamma = dot(s_hist.back(), y_hist.back()) / dot(y_hist.back(), y_hist.back());
      for (auto& d : direction) d *= gamma;
    }
    for (std::size_t i = 0; i < s_hist.size(); ++i) {
      const double beta = rho_hist[i] * dot(y_hist[i], direction);
      for (std::size_t j = 0; j < n; ++j) direction[j] += (alpha[i] - beta) * s_hist[i][j];
    }
    for (auto& d : direction) d = -d;

    double dir_dot_g = dot(direction, g);
    if (dir_dot_g >= 0.0) {
      // Not a descent direction (can happen after a degenerate update):
      // fall back to steepest descent.
      for (std::size_t j = 0; j < n; ++j) direction[j] = -g[j];
      dir_dot_g = -gnorm * gnorm;
    }

    // Armijo backtracking line search.
    double step = opts.initial_step;
    double fx_new = fx;
    bool accepted = false;
    for (int ls = 0; ls < opts.max_line_search; ++ls) {
      for (std::size_t j = 0; j < n; ++j) x_new[j] = x[j] + step * direction[j];
      fx_new = value_and_grad(x_new, g_new);
      if (fx_new <= fx + opts.armijo_c1 * step * dir_dot_g) {
        accepted = true;
        break;
      }
      step *= opts.backtrack_factor;
    }
    if (!accepted) {
      res.iterations = iter;
      break;  // line search failed; return best point so far
    }

    std::vector<double> s(n), y(n);
    for (std::size_t j = 0; j < n; ++j) {
      s[j] = x_new[j] - x[j];
      y[j] = g_new[j] - g[j];
    }
    const double sy = dot(s, y);
    if (sy > 1e-14) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (static_cast<int>(s_hist.size()) > opts.history) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }
    x.swap(x_new);
    g.swap(g_new);
    fx = fx_new;
    res.iterations = iter + 1;
  }

  res.x = std::move(x);
  res.fx = fx;
  res.gradient_norm = norm2(g);
  return res;
}

}  // namespace mpqls
