// Limited-memory BFGS with Armijo backtracking, used as the fallback phase
// solver for symmetric quantum signal processing when the fixed-point
// iteration stalls near the unit-norm boundary (Dong et al., SIAM J. Sci.
// Comput. 2024 use the same two-stage strategy).
#pragma once

#include <functional>
#include <vector>

namespace mpqls {

struct LbfgsOptions {
  int max_iterations = 500;
  int history = 10;            ///< number of (s, y) pairs kept
  double gradient_tolerance = 1e-12;
  double initial_step = 1.0;
  double armijo_c1 = 1e-4;
  double backtrack_factor = 0.5;
  int max_line_search = 40;
};

struct LbfgsResult {
  std::vector<double> x;
  double fx = 0.0;
  double gradient_norm = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimize f(x) given an oracle returning the value and writing the
/// gradient. `x0` is the starting point.
LbfgsResult lbfgs_minimize(
    const std::function<double(const std::vector<double>&, std::vector<double>&)>& value_and_grad,
    std::vector<double> x0, const LbfgsOptions& opts = {});

}  // namespace mpqls
