#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/contracts.hpp"

namespace mpqls {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  expects(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, v);
  return buf;
}

std::string fmt_fix(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_int(unsigned long long v) {
  std::string raw = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace mpqls
