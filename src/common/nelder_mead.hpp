// Nelder-Mead downhill simplex (derivative-free), used by the VQLS
// baseline whose cost function is a ratio of quantum expectation values
// (no cheap exact gradient).
#pragma once

#include <functional>
#include <vector>

namespace mpqls {

struct NelderMeadOptions {
  int max_evaluations = 20000;
  double tolerance = 1e-10;      ///< simplex spread (function values)
  double initial_step = 0.25;    ///< initial simplex edge length
};

struct NelderMeadResult {
  std::vector<double> x;
  double fx = 0.0;
  int evaluations = 0;
  bool converged = false;
};

NelderMeadResult nelder_mead_minimize(const std::function<double(const std::vector<double>&)>& f,
                                      std::vector<double> x0,
                                      const NelderMeadOptions& opts = {});

}  // namespace mpqls
