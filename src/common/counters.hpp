// Operation counters used to report the classical/quantum cost breakdowns
// of Table II and the communication volumes of Fig. 1. Counters are plain
// value types passed explicitly (no global mutable state), per Core
// Guidelines I.2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpqls {

/// Counts classical floating-point work, attributed to named phases
/// ("residual", "state-prep tree", "de-normalization", ...).
class FlopCounter {
 public:
  void add(std::uint64_t flops) { total_ += flops; }
  std::uint64_t total() const { return total_; }
  void reset() { total_ = 0; }

 private:
  std::uint64_t total_ = 0;
};

/// Aggregate cost record for one phase of the hybrid algorithm.
struct PhaseCost {
  std::string phase;              ///< e.g. "SP", "BE", "QSVT", "Solution"
  std::uint64_t classical_flops = 0;
  std::uint64_t quantum_gates = 0;    ///< total gate count
  std::uint64_t quantum_tgates = 0;   ///< logical T-gate estimate
  std::uint64_t be_calls = 0;         ///< calls to the block-encoding U / U^dagger
};

/// Ordered collection of per-phase costs (First solve, then iterations).
class CostLedger {
 public:
  PhaseCost& phase(const std::string& name) {
    for (auto& p : entries_) {
      if (p.phase == name) return p;
    }
    entries_.push_back(PhaseCost{name, 0, 0, 0, 0});
    return entries_.back();
  }

  const std::vector<PhaseCost>& entries() const { return entries_; }

  std::uint64_t total_classical_flops() const {
    std::uint64_t s = 0;
    for (const auto& p : entries_) s += p.classical_flops;
    return s;
  }
  std::uint64_t total_tgates() const {
    std::uint64_t s = 0;
    for (const auto& p : entries_) s += p.quantum_tgates;
    return s;
  }
  std::uint64_t total_be_calls() const {
    std::uint64_t s = 0;
    for (const auto& p : entries_) s += p.be_calls;
    return s;
  }

 private:
  std::vector<PhaseCost> entries_;
};

}  // namespace mpqls
