// Minimal header-only JSON value with a writer and a recursive-descent
// parser — just enough for the solver service's job files and telemetry
// traces (service/json_io). Numbers are IEEE doubles, written with
// shortest-round-trip formatting so a dump -> parse cycle is lossless;
// objects keep sorted keys so dumps are deterministic.
//
// The parser is hardened for untrusted network input (the daemon feeds it
// raw request bodies): trailing garbage after the top-level value is
// rejected, nesting depth is capped, and every rejection throws
// JsonParseError carrying the byte offset — so a 400 response can point at
// the defect instead of silently truncating or overflowing the stack.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/contracts.hpp"

namespace mpqls {

/// Malformed JSON text. `position()` is the byte offset into the parsed
/// document where the defect was detected (0-based).
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, std::size_t position)
      : std::runtime_error("Json: " + message + " at byte " + std::to_string(position)),
        position_(position) {}

  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double v) : value_(v) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  // JSON numbers are doubles: integers above 2^53 would round silently, so
  // refuse them loudly (64-bit hashes travel as hex strings instead).
  Json(std::int64_t v) : value_(static_cast<double>(v)) {
    expects(static_cast<std::int64_t>(std::get<double>(value_)) == v,
            "Json: integer not representable as double");
  }
  Json(std::uint64_t v) : value_(static_cast<double>(v)) {
    expects(std::get<double>(value_) < 0x1p64 &&
                static_cast<std::uint64_t>(std::get<double>(value_)) == v,
            "Json: integer not representable as double");
  }
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const {
    expects(is_bool(), "Json: not a bool");
    return std::get<bool>(value_);
  }
  double as_number() const {
    expects(is_number(), "Json: not a number");
    return std::get<double>(value_);
  }
  /// Integer accessors validate range/finiteness first: casting an
  /// untrusted out-of-range double to an integer type is UB.
  std::int64_t as_int() const {
    const double v = as_number();
    expects(std::isfinite(v) && v >= -0x1p63 && v < 0x1p63, "Json: number out of int64 range");
    return static_cast<std::int64_t>(v);
  }
  std::uint64_t as_uint() const {
    const double v = as_number();
    expects(std::isfinite(v) && v >= 0.0 && v < 0x1p64, "Json: number out of uint64 range");
    return static_cast<std::uint64_t>(v);
  }
  const std::string& as_string() const {
    expects(is_string(), "Json: not a string");
    return std::get<std::string>(value_);
  }
  const Array& as_array() const {
    expects(is_array(), "Json: not an array");
    return std::get<Array>(value_);
  }
  Array& as_array() {
    expects(is_array(), "Json: not an array");
    return std::get<Array>(value_);
  }
  const Object& as_object() const {
    expects(is_object(), "Json: not an object");
    return std::get<Object>(value_);
  }
  Object& as_object() {
    expects(is_object(), "Json: not an object");
    return std::get<Object>(value_);
  }

  /// Object access, inserting null on first use (writer-side sugar).
  Json& operator[](const std::string& key) { return as_object()[key]; }

  /// Const object lookup; the key must exist.
  const Json& at(const std::string& key) const {
    const auto& o = as_object();
    auto it = o.find(key);
    expects(it != o.end(), "Json: missing key");
    return it->second;
  }

  bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }

  /// `at(key)` with a fallback when the key is absent.
  double number_or(const std::string& key, double fallback) const {
    return contains(key) ? at(key).as_number() : fallback;
  }
  std::int64_t int_or(const std::string& key, std::int64_t fallback) const {
    return contains(key) ? at(key).as_int() : fallback;
  }
  std::uint64_t uint_or(const std::string& key, std::uint64_t fallback) const {
    return contains(key) ? at(key).as_uint() : fallback;
  }
  bool bool_or(const std::string& key, bool fallback) const {
    return contains(key) ? at(key).as_bool() : fallback;
  }
  std::string string_or(const std::string& key, std::string fallback) const {
    return contains(key) ? at(key).as_string() : fallback;
  }

  void push_back(Json v) { as_array().push_back(std::move(v)); }

  // --- writer ---------------------------------------------------------------

  /// Serialize. indent < 0: compact one-liner; otherwise pretty-print with
  /// `indent` spaces per level.
  std::string dump(int indent = -1) const {
    std::string out;
    write(out, indent, 0);
    return out;
  }

  // --- parser ---------------------------------------------------------------

  /// Parse a complete JSON document. Throws JsonParseError (with byte
  /// position) on malformed input, trailing non-whitespace after the
  /// top-level value, or nesting deeper than Parser::kMaxDepth.
  static Json parse(std::string_view text) {
    Parser p{text, 0};
    Json v = p.parse_value();
    p.skip_ws();
    if (p.pos != text.size()) throw JsonParseError("trailing characters after document", p.pos);
    return v;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;

  static void write_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (unsigned char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            const char* hex = "0123456789abcdef";
            out += "\\u00";
            out += hex[c >> 4];
            out += hex[c & 0xF];
          } else {
            out += static_cast<char>(c);
          }
      }
    }
    out += '"';
  }

  static void write_number(std::string& out, double v) {
    expects(std::isfinite(v), "Json: cannot serialize NaN/Inf");
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
  }

  void write(std::string& out, int indent, int depth) const {
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
      if (!pretty) return;
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    };
    if (is_null()) {
      out += "null";
    } else if (is_bool()) {
      out += as_bool() ? "true" : "false";
    } else if (is_number()) {
      write_number(out, as_number());
    } else if (is_string()) {
      write_escaped(out, as_string());
    } else if (is_array()) {
      const auto& a = as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        a[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
    } else {
      const auto& o = as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        write_escaped(out, k);
        out += pretty ? ": " : ":";
        v.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
    }
  }

  struct Parser {
    /// Recursion guard: a hostile document of repeated '[' would otherwise
    /// overflow the stack instead of raising a catchable error.
    static constexpr int kMaxDepth = 256;

    std::string_view text;
    std::size_t pos;
    int depth = 0;

    [[noreturn]] void fail(const char* message) const { throw JsonParseError(message, pos); }

    void skip_ws() {
      while (pos < text.size() &&
             (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r')) {
        ++pos;
      }
    }

    char peek() {
      if (pos >= text.size()) fail("unexpected end of input");
      return text[pos];
    }

    void expect(char c) {
      if (pos >= text.size() || text[pos] != c) fail("unexpected character");
      ++pos;
    }

    bool consume_literal(std::string_view lit) {
      if (text.substr(pos, lit.size()) != lit) return false;
      pos += lit.size();
      return true;
    }

    Json parse_value() {
      skip_ws();
      if (depth >= kMaxDepth) fail("nesting too deep");
      ++depth;
      Json v;
      const char c = peek();
      if (c == '{') {
        v = parse_object();
      } else if (c == '[') {
        v = parse_array();
      } else if (c == '"') {
        v = Json(parse_string());
      } else if (consume_literal("true")) {
        v = Json(true);
      } else if (consume_literal("false")) {
        v = Json(false);
      } else if (consume_literal("null")) {
        v = Json(nullptr);
      } else {
        v = parse_number();
      }
      --depth;
      return v;
    }

    Json parse_object() {
      expect('{');
      Json::Object o;
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return Json(std::move(o));
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        o[std::move(key)] = parse_value();
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return Json(std::move(o));
      }
    }

    Json parse_array() {
      expect('[');
      Json::Array a;
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return Json(std::move(a));
      }
      for (;;) {
        a.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return Json(std::move(a));
      }
    }

    std::string parse_string() {
      expect('"');
      std::string s;
      for (;;) {
        if (pos >= text.size()) fail("unterminated string");
        char c = text[pos++];
        if (c == '"') return s;
        if (c != '\\') {
          s += c;
          continue;
        }
        if (pos >= text.size()) fail("unterminated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Encode the BMP code point as UTF-8 (surrogate pairs are passed
            // through unpaired — the service never emits them).
            if (cp < 0x80) {
              s += static_cast<char>(cp);
            } else if (cp < 0x800) {
              s += static_cast<char>(0xC0 | (cp >> 6));
              s += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (cp >> 12));
              s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      }
    }

    Json parse_number() {
      const std::size_t start = pos;
      if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
      while (pos < text.size() &&
             ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' || text[pos] == 'e' ||
              text[pos] == 'E' || text[pos] == '-' || text[pos] == '+')) {
        ++pos;
      }
      double v = 0.0;
      const auto res = std::from_chars(text.data() + start, text.data() + pos, v);
      if (res.ec != std::errc{} || res.ptr != text.data() + pos) {
        throw JsonParseError("bad number", start);
      }
      return Json(v);
    }
  };
};

}  // namespace mpqls
