// Fixed-size worker pool with a future-returning submit(). The solver
// service runs independent solve jobs and per-RHS solves on these workers;
// tasks must not block on tasks scheduled to the *same* pool (the service
// keeps job orchestration and RHS solves on separate pools for exactly
// that reason).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mpqls {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a nullary callable; returns a future for its result.
  template <typename F>
  auto submit(F f) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mpqls
