// Lightweight contract checks in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()"). Violations throw rather
// than abort so that tests can assert on them.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mpqls {

/// Thrown when a precondition, postcondition or invariant is violated.
class contract_violation : public std::logic_error {
 public:
  explicit contract_violation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* msg,
                                       const std::source_location& loc) {
  throw contract_violation(std::string(kind) + " failed: " + msg + " [" +
                           loc.file_name() + ":" + std::to_string(loc.line()) + " in " +
                           loc.function_name() + "]");
}
}  // namespace detail

/// Precondition check: call at function entry.
inline void expects(bool cond, const char* msg = "precondition",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Expects", msg, loc);
}

/// Postcondition check: call before returning a result.
inline void ensures(bool cond, const char* msg = "postcondition",
                    const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::contract_fail("Ensures", msg, loc);
}

}  // namespace mpqls
