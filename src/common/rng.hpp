// Deterministic, fast pseudo-random number generation (xoshiro256++) with
// the distribution helpers the library needs. A self-owned generator keeps
// every experiment reproducible across standard libraries (std::mt19937's
// distributions are not portable across implementations).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

namespace mpqls {

/// xoshiro256++ by Blackman & Vigna: 256-bit state, excellent statistical
/// quality, jumpable. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-seed the full 256-bit state from a 64-bit value via SplitMix64,
  /// as recommended by the xoshiro authors.
  void reseed(std::uint64_t seed) {
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ull;
      w = (w ^ (w >> 27)) * 0x94D049BB133111EBull;
      s = w ^ (w >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire-style rejection
  /// to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal deviate (Marsaglia polar method; caches the spare).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Normal deviate with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mpqls
