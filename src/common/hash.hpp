// FNV-1a content hashing for cache fingerprints. 64-bit, deterministic
// across platforms (explicit byte order for scalar feeds), and cheap enough
// to run over a full matrix on every service request.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mpqls {

/// Incremental FNV-1a 64-bit hasher. Feed scalars through the typed
/// methods so the digest does not depend on host struct layout.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
    return *this;
  }

  Fnv1a& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<unsigned char>(v >> (8 * i));
      state_ *= kPrime;
    }
    return *this;
  }

  Fnv1a& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

  /// Hash the IEEE-754 bit pattern; -0.0 is canonicalized to +0.0 so equal
  /// values hash equally.
  Fnv1a& f64(double v) {
    if (v == 0.0) v = 0.0;  // collapse -0.0
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return u64(bits);
  }

  Fnv1a& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return state_; }

 private:
  static constexpr std::uint64_t kOffset = 0xCBF29CE484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001B3ull;
  std::uint64_t state_ = kOffset;
};

/// splitmix64 finalizer: full-avalanche mixing of a 64-bit value. Used
/// where FNV digests are compared against each other (rendezvous-ring
/// scores, round-robin spreading) — raw FNV output over similar inputs
/// is correlated enough to skew such comparisons badly.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

}  // namespace mpqls
