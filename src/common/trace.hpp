// Request tracing for the serving stack: one `Trace` per job, filled
// with steady-clock `Span`s from whatever thread happens to be doing the
// work (event loop, job worker, solve pool), readable at any time from
// the `/v1/jobs/{id}/trace` handler without stopping the writers.
//
// Design constraints, in order:
//   1. Recording must be cheap enough to leave on for every job (the
//      tracing-overhead bench gates <=2% on the cached-service
//      workload): span slots are claimed with one relaxed fetch_add and
//      published with one release store — no locks, no allocation
//      beyond the span's name/attr strings (short enough for SSO in the
//      common case).
//   2. Readers may race writers: a span becomes visible to `snapshot()`
//      only after its begin fields are published (`open`), and its
//      attrs/duration are read only after the end publish (`done`).
//      A still-running span reports `running=true` with a live duration.
//   3. Bounded memory: the slot array is sized at construction; when it
//      fills, further spans are counted in `dropped()` instead of
//      recorded. Retained traces (job registry, flight recorder) cost
//      `capacity * sizeof(Slot)` each, nothing more.
//
// Trace ids are 128 bits, minted via the splitmix64 finalizer over a
// process-unique counter, rendered as 32 lowercase hex chars — the
// format of the `x-mpqls-trace` header and the wire-v3 trace field.
#pragma once

#include <atomic>
#include <charconv>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.hpp"

namespace mpqls::trace {

/// 128-bit trace identifier. Zero means "no id assigned yet".
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool zero() const { return hi == 0 && lo == 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const TraceId& a, const TraceId& b) { return !(a == b); }

  /// 32 lowercase hex chars, hi half first — the `x-mpqls-trace` format.
  std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string s(32, '0');
    for (int i = 0; i < 16; ++i) s[15 - i] = kDigits[(hi >> (4 * i)) & 0xF];
    for (int i = 0; i < 16; ++i) s[31 - i] = kDigits[(lo >> (4 * i)) & 0xF];
    return s;
  }

  /// Parse exactly 32 hex chars; anything else yields a zero id and
  /// `false` (callers mint a fresh id instead of trusting bad input).
  static bool parse(std::string_view text, TraceId& out) {
    out = TraceId{};
    if (text.size() != 32) return false;
    auto half = [](std::string_view part, std::uint64_t& value) {
      const auto res = std::from_chars(part.data(), part.data() + part.size(), value, 16);
      return res.ec == std::errc{} && res.ptr == part.data() + part.size();
    };
    TraceId id;
    if (!half(text.substr(0, 16), id.hi) || !half(text.substr(16, 16), id.lo)) {
      out = TraceId{};
      return false;
    }
    out = id;
    return true;
  }
};

/// Mint a fresh id: splitmix64 over a process-global counter seeded with
/// clock entropy, so ids are unique within a process and overwhelmingly
/// unlikely to collide across daemons in one cluster.
inline TraceId mint_trace_id() {
  static std::atomic<std::uint64_t> counter{[] {
    const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
    const auto wall = std::chrono::system_clock::now().time_since_epoch().count();
    return mix64(static_cast<std::uint64_t>(now)) ^ static_cast<std::uint64_t>(wall);
  }()};
  const std::uint64_t seed = counter.fetch_add(1, std::memory_order_relaxed);
  TraceId id;
  id.hi = mix64(seed ^ 0x9E3779B97F4A7C15ull);
  id.lo = mix64(seed + 0xD1B54A32D192ED03ull);
  if (id.zero()) id.lo = 1;  // zero is reserved for "no id"
  return id;
}

/// Default span-slot count per trace. Enough for the full life of a
/// typical job (admission + queue + prepare + a few panel groups x tens
/// of refinement rounds); pathological jobs overflow into `dropped()`.
inline constexpr std::size_t kDefaultSpanCapacity = 256;

/// A finished (or still-running) span as seen by a reader.
struct SpanView {
  std::uint64_t id = 0;      ///< slot index + 1; 0 is "no span"
  std::uint64_t parent = 0;  ///< parent span id, 0 = top level
  std::string name;
  std::uint64_t start_ns = 0;     ///< offset from the trace epoch
  std::uint64_t duration_ns = 0;  ///< live elapsed time if still running
  std::string attrs;              ///< pre-rendered "k=v,k=v" pairs
  bool running = false;
};

/// Per-job span buffer. All methods are safe to call concurrently from
/// any thread; `snapshot()` is safe to call while spans are being
/// recorded.
class Trace {
 public:
  explicit Trace(TraceId id, std::size_t capacity = kDefaultSpanCapacity)
      : id_(id), epoch_(std::chrono::steady_clock::now()), slots_(capacity) {}

  const TraceId& id() const { return id_; }

  /// Nanoseconds since this trace was created (its span time base).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             epoch_)
            .count());
  }

  /// Start a span. Returns its id, or 0 if the buffer is full (the span
  /// is counted in `dropped()` and `end_span(0, ...)` is a no-op).
  std::uint64_t begin_span(std::string_view name, std::uint64_t parent = 0) {
    const std::size_t slot = claimed_.fetch_add(1, std::memory_order_relaxed);
    if (slot >= slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    Slot& s = slots_[slot];
    s.parent = parent;
    s.name.assign(name);
    s.start_ns = now_ns();
    s.open.store(true, std::memory_order_release);
    return slot + 1;
  }

  /// Finish a span started with `begin_span`. `attrs` is a pre-rendered
  /// comma-separated "key=value" list (keys/values must not contain ','
  /// or '='); it is attached atomically with the duration.
  void end_span(std::uint64_t span_id, std::string attrs = {}) {
    if (span_id == 0 || span_id > slots_.size()) return;
    Slot& s = slots_[span_id - 1];
    s.attrs = std::move(attrs);
    s.duration_ns = now_ns() - s.start_ns;
    s.done.store(true, std::memory_order_release);
  }

  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Consistent read of every published span, in start order (slot
  /// claim order). Running spans appear with a live duration and no
  /// attrs; slots claimed but not yet opened are skipped.
  std::vector<SpanView> snapshot() const {
    std::vector<SpanView> out;
    const std::size_t n = std::min(claimed_.load(std::memory_order_relaxed), slots_.size());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const Slot& s = slots_[i];
      if (!s.open.load(std::memory_order_acquire)) continue;
      SpanView v;
      v.id = i + 1;
      v.parent = s.parent;
      v.name = s.name;
      v.start_ns = s.start_ns;
      if (s.done.load(std::memory_order_acquire)) {
        v.duration_ns = s.duration_ns;
        v.attrs = s.attrs;
      } else {
        v.duration_ns = now_ns() - s.start_ns;
        v.running = true;
      }
      out.push_back(std::move(v));
    }
    return out;
  }

 private:
  struct Slot {
    std::uint64_t parent = 0;
    std::string name;
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    std::string attrs;
    std::atomic<bool> open{false};  ///< begin fields published
    std::atomic<bool> done{false};  ///< duration + attrs published
  };

  TraceId id_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::size_t> claimed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<Slot> slots_;
};

/// Shared handle to a per-job trace. Null = tracing disabled for this
/// job; every recording helper no-ops on a null context.
using TraceContext = std::shared_ptr<Trace>;

inline TraceContext make_trace(TraceId id = {}, std::size_t capacity = kDefaultSpanCapacity) {
  return std::make_shared<Trace>(id.zero() ? mint_trace_id() : id, capacity);
}

/// RAII span: begins on construction, ends (with any attached attrs)
/// when the scope exits. Default-constructed or null-context guards are
/// inert — the disabled-macro expansion and the tracing-off runtime
/// path share that no-op.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(const TraceContext& trace, std::string_view name, std::uint64_t parent = 0)
      : trace_(trace), id_(trace_ ? trace_->begin_span(name, parent) : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : trace_(std::move(other.trace_)), id_(other.id_), attrs_(std::move(other.attrs_)) {
    other.trace_.reset();
    other.id_ = 0;
  }
  ScopedSpan& operator=(ScopedSpan&&) = delete;

  ~ScopedSpan() { finish(); }

  /// Attach a "key=value" attribute, recorded when the span ends.
  void attr(std::string_view key, std::string_view value) {
    if (!trace_ || id_ == 0) return;
    if (!attrs_.empty()) attrs_ += ',';
    attrs_ += key;
    attrs_ += '=';
    attrs_ += value;
  }
  void attr(std::string_view key, std::uint64_t value) { attr(key, std::to_string(value)); }

  /// End the span now instead of at scope exit.
  void finish() {
    if (trace_ && id_ != 0) trace_->end_span(id_, std::move(attrs_));
    trace_.reset();
    id_ = 0;
  }

  std::uint64_t id() const { return id_; }
  explicit operator bool() const { return id_ != 0; }

 private:
  TraceContext trace_;
  std::uint64_t id_ = 0;
  std::string attrs_;
};

// Scoped-span macro: the instrumentation call sites compile to nothing
// (an inert guard the optimizer deletes) when MPQLS_TRACE_DISABLED is
// defined at build time; otherwise a null context at runtime costs one
// pointer test per site.
#ifndef MPQLS_TRACE_DISABLED
#define MPQLS_TRACE_SPAN(var, tracectx, spanname, ...) \
  ::mpqls::trace::ScopedSpan var((tracectx), (spanname), ##__VA_ARGS__)
#else
#define MPQLS_TRACE_SPAN(var, tracectx, spanname, ...) ::mpqls::trace::ScopedSpan var
#endif

/// One retained slow-job entry: identity + latency summary + the full
/// trace for post-hoc inspection.
struct FlightRecord {
  std::string job_id;
  std::string state;
  double total_seconds = 0.0;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  TraceContext trace;
};

/// Bounded "K worst jobs by total latency" recorder. Updated once per
/// finished job, so a mutex is plenty; `snapshot()` returns worst
/// first. Memory is bounded by `capacity` retained traces.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 8) : capacity_(capacity) {}

  void record(FlightRecord rec) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    // Insert sorted (descending by total latency); the list is tiny.
    auto it = worst_.begin();
    while (it != worst_.end() && it->total_seconds >= rec.total_seconds) ++it;
    if (it == worst_.end() && worst_.size() >= capacity_) return;
    worst_.insert(it, std::move(rec));
    if (worst_.size() > capacity_) worst_.pop_back();
  }

  std::vector<FlightRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return worst_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<FlightRecord> worst_;
};

}  // namespace mpqls::trace
