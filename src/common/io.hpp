// Whole-file text slurp shared by the example CLIs (job files, traces).
#pragma once

#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace mpqls {

/// Read an entire file; nullopt when it cannot be opened.
inline std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace mpqls
