// Special functions needed by the polynomial-approximation module:
// log-binomials, the regularized incomplete beta function (for stable
// binomial tail probabilities in Eq. (4) of the paper), and erf helpers.
#pragma once

#include <cstdint>

namespace mpqls {

/// log(C(n, k)) computed via lgamma; exact enough for n up to ~1e15.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Regularized incomplete beta function I_x(a, b) for a,b > 0, 0 <= x <= 1,
/// evaluated with the Lentz continued-fraction algorithm (Numerical-Recipes
/// style). Relative accuracy ~1e-14 away from the endpoints.
double incomplete_beta(double a, double b, double x);

/// Tail of a symmetric binomial: P[X >= k] for X ~ Binomial(n, 1/2).
/// Uses the identity P[X >= k] = I_{1/2}(k, n-k+1), which stays accurate
/// for n up to ~1e9 where direct summation of C(n,i) 2^{-n} would overflow
/// or lose all precision. Returns 1 for k <= 0 and 0 for k > n.
double binomial_tail_half(std::uint64_t n, std::int64_t k);

}  // namespace mpqls
