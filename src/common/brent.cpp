#include "common/brent.hpp"

#include <cmath>
#include <utility>

#include "common/contracts.hpp"

namespace mpqls {

BrentResult brent_minimize(const std::function<double(double)>& f, double a, double b,
                           double tol, int max_iter) {
  expects(a < b, "brent_minimize requires a < b");
  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2
  constexpr double kTiny = 1e-21;

  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  BrentResult res;
  for (int iter = 0; iter < max_iter; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 = tol * std::fabs(x) + kTiny;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) {
      res.converged = true;
      res.iterations = iter;
      break;
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Fit a parabola through (v,fv), (w,fw), (x,fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double etemp = e;
      e = d;
      // Accept the parabolic step only if it falls inside (a,b) and moves
      // less than half the step before last.
      if (std::fabs(p) < std::fabs(0.5 * q * etemp) && p > q * (a - x) && p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = std::copysign(tol1, xm - x);
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = kGolden * e;
    }
    const double u = (std::fabs(d) >= tol1) ? x + d : x + std::copysign(tol1, d);
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) a = x; else b = x;
      v = w; w = x; x = u;
      fv = fw; fw = fx; fx = fu;
    } else {
      if (u < x) a = u; else b = u;
      if (fu <= fw || w == x) {
        v = w; w = u;
        fv = fw; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
    res.iterations = iter + 1;
  }
  res.x = x;
  res.fx = fx;
  return res;
}

BrentResult brent_root(const std::function<double(double)>& f, double a, double b,
                       double tol, int max_iter) {
  double fa = f(a), fb = f(b);
  expects(fa * fb <= 0.0, "brent_root requires a sign change on [a,b]");
  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  double d = b - a, e = d;

  BrentResult res;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::fabs(b) + 0.5 * tol;
    const double xm = 0.5 * (c - b);
    if (std::fabs(xm) <= tol1 || fb == 0.0) {
      res.converged = true;
      res.iterations = iter;
      break;
    }
    if (std::fabs(e) >= tol1 && std::fabs(fa) > std::fabs(fb)) {
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        // Secant step.
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        // Inverse quadratic interpolation.
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      const double min1 = 3.0 * xm * q - std::fabs(tol1 * q);
      const double min2 = std::fabs(e * q);
      if (2.0 * p < std::fmin(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol1) ? d : std::copysign(tol1, xm);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
    res.iterations = iter + 1;
  }
  res.x = b;
  res.fx = fb;
  return res;
}

}  // namespace mpqls
