#include "hhl/hhl.hpp"

#include <bit>
#include <cmath>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "linalg/jacobi_eig.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/statevector.hpp"
#include "qsim/synth/qft.hpp"
#include "qsim/synth/ucr.hpp"
#include "qsvt/denormalize.hpp"
#include "stateprep/kp_tree.hpp"

namespace mpqls::hhl {

namespace {

using c64 = std::complex<double>;

// Dense payload for U^p = V diag(e^{i lambda_j t p}) V^T.
linalg::Matrix<c64> evolution_power(const linalg::SymmetricEig& eig, double t, double power) {
  const std::size_t N = eig.values.size();
  linalg::Matrix<c64> U(N, N);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      c64 acc{};
      for (std::size_t k = 0; k < N; ++k) {
        const c64 phase = std::exp(c64(0, eig.values[k] * t * power));
        acc += eig.vectors(i, k) * phase * eig.vectors(j, k);
      }
      U(i, j) = acc;
    }
  }
  return U;
}

}  // namespace

HhlResult hhl_solve(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                    const HhlOptions& options) {
  const std::size_t N = A.rows();
  expects(N == A.cols() && N == b.size(), "hhl: dimension mismatch");
  expects(std::has_single_bit(N), "hhl: dimension must be 2^n");
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = i + 1; j < N; ++j) {
      expects(std::fabs(A(i, j) - A(j, i)) < 1e-12, "hhl: matrix must be symmetric");
    }
  }
  const auto n = static_cast<std::uint32_t>(std::countr_zero(N));
  const std::uint32_t m = options.clock_qubits;
  expects(m >= 2 && m <= 12, "hhl: clock_qubits in [2, 12]");

  const auto eig = linalg::jacobi_eigensymmetric(A);
  double lambda_max = 0.0, lambda_min = 1e300;
  for (double l : eig.values) {
    lambda_max = std::fmax(lambda_max, std::fabs(l));
    lambda_min = std::fmin(lambda_min, std::fabs(l));
  }
  expects(lambda_min > 0.0, "hhl: singular matrix");

  // Map the spectrum into the signed clock window: lambda*t/(2pi) in
  // (-1/2, 1/2) with a one-bin margin.
  const double bins = static_cast<double>(std::size_t{1} << m);
  const double t = (options.evolution_time > 0.0)
                       ? options.evolution_time
                       : 2.0 * M_PI * (0.5 - 1.0 / bins) / lambda_max;
  const double C = (options.rotation_constant > 0.0) ? options.rotation_constant
                                                     : 0.9 * lambda_min;

  // Register layout: data [0,n), clock [n, n+m), rotation ancilla n+m.
  const std::uint32_t rot = n + m;
  const std::uint32_t width = rot + 1;
  qsim::Circuit c(width);
  std::vector<std::uint32_t> clock(m);
  for (std::uint32_t k = 0; k < m; ++k) clock[k] = n + k;
  std::vector<std::uint32_t> data_targets(n);
  for (std::uint32_t q = 0; q < n; ++q) data_targets[q] = q;

  // State preparation of b on the data register.
  const auto sp = stateprep::kp_state_preparation(b);
  c.append(sp.circuit, data_targets.empty() ? std::vector<std::uint32_t>{0} : data_targets);

  // Forward QPE.
  std::uint64_t oracle_gates = 0;
  qsim::Circuit qpe(width);
  for (std::uint32_t k = 0; k < m; ++k) qpe.h(clock[k]);
  for (std::uint32_t k = 0; k < m; ++k) {
    qsim::Gate g;
    g.kind = qsim::GateKind::kUnitary;
    g.targets = data_targets;
    g.controls = {clock[k]};
    g.matrix = std::make_shared<const linalg::Matrix<c64>>(
        evolution_power(eig, t, static_cast<double>(std::size_t{1} << k)));
    qpe.push(g);
    ++oracle_gates;
  }
  append_iqft(qpe, clock);
  c.append(qpe);

  // Eigenvalue-inversion rotation: clock value v (signed) encodes
  // lambda(v) = 2 pi v~ / (2^m t).
  std::vector<double> angles(std::size_t{1} << m, 0.0);
  for (std::size_t v = 1; v < angles.size(); ++v) {
    const double signed_v = (v < angles.size() / 2)
                                ? static_cast<double>(v)
                                : static_cast<double>(v) - bins;
    const double lambda = 2.0 * M_PI * signed_v / (bins * t);
    const double ratio = std::fmax(-1.0, std::fmin(1.0, C / lambda));
    angles[v] = 2.0 * std::asin(ratio);
  }
  qsim::append_ucry(c, clock, rot, angles);

  // Uncompute QPE.
  c.append(qpe.dagger());

  // Compile (fusing the QPE ladders) and execute, then postselect
  // {rotation = 1, clock = 0}.
  qsim::Statevector<double> sv(width);
  qsim::exec::Executor<double>().run(qsim::exec::compile<double>(c), sv);
  qsim::Circuit flip(width);
  flip.x(rot);
  sv.apply(flip);
  std::vector<std::uint32_t> zeros = clock;
  zeros.push_back(rot);
  const double p_success = sv.postselect_zero(zeros);

  HhlResult out;
  out.direction.resize(N);
  for (std::size_t i = 0; i < N; ++i) out.direction[i] = sv[i].real();
  const double nrm = linalg::nrm2(out.direction);
  expects(nrm > 0.0, "hhl: zero-probability postselection");
  for (auto& v : out.direction) v /= nrm;

  // De-normalize classically (same Remark 2 machinery as the QSVT solver).
  const auto fit = qsvt::fit_step_closed_form(A, {}, out.direction, b);
  out.x.resize(N);
  for (std::size_t i = 0; i < N; ++i) out.x[i] = fit.mu * out.direction[i];
  out.success_probability = p_success;
  out.total_qubits = width;
  out.circuit_gates = c.size();
  out.oracle_gates = oracle_gates * 2;  // forward + uncompute
  return out;
}

HhlResult hhl_solve_general(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                            const HhlOptions& options) {
  const std::size_t N = A.rows();
  // Hermitian dilation: [[0, A], [A^T, 0]] [y; x] = [b; 0] has solution
  // y = 0, x = A^{-1} b.
  linalg::Matrix<double> D(2 * N, 2 * N);
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      D(i, N + j) = A(i, j);
      D(N + i, j) = A(j, i);
    }
  }
  linalg::Vector<double> rhs(2 * N, 0.0);
  for (std::size_t i = 0; i < N; ++i) rhs[i] = b[i];
  const auto dilated = hhl_solve(D, rhs, options);

  HhlResult out = dilated;
  out.x.assign(N, 0.0);
  out.direction.assign(N, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    out.x[i] = dilated.x[N + i];
    out.direction[i] = dilated.direction[N + i];
  }
  const double nrm = linalg::nrm2(out.direction);
  if (nrm > 0.0) {
    for (auto& v : out.direction) v /= nrm;
  }
  return out;
}

}  // namespace mpqls::hhl
