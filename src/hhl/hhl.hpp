// HHL baseline solver (Harrow-Hassidim-Lloyd 2009, the paper's reference
// [18]): quantum phase estimation over U = e^{iAt}, a controlled
// eigenvalue-inversion rotation, and QPE uncomputation. Included as the
// comparator the paper's introduction positions QSVT against (and the
// subject of its iterative-refinement prior work [36], [39]).
//
// The controlled powers U^{2^k} are applied as dense payloads computed
// from the eigendecomposition (exact Hamiltonian simulation — an
// oracle-level substitution consistent with the dense block-encoding used
// by the QSVT pipeline; see DESIGN.md).
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace mpqls::hhl {

struct HhlOptions {
  std::uint32_t clock_qubits = 6;
  /// Evolution time; 0 = auto (maps the spectrum into the signed clock
  /// window with a one-bin margin).
  double evolution_time = 0.0;
  /// Rotation constant C in angle = 2 asin(C/lambda); 0 = auto
  /// (0.9 * min |lambda|).
  double rotation_constant = 0.0;
};

struct HhlResult {
  linalg::Vector<double> x;          ///< de-normalized solution estimate
  linalg::Vector<double> direction;  ///< unit-norm solution direction
  double success_probability = 0.0;  ///< P(ancilla = 1, clock = 0)
  std::uint32_t total_qubits = 0;
  std::uint64_t circuit_gates = 0;
  std::uint64_t oracle_gates = 0;    ///< dense e^{iAt 2^k} payloads
};

/// Solve A x = b for symmetric A via HHL.
HhlResult hhl_solve(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                    const HhlOptions& options = {});

/// General (non-symmetric) A via the Hermitian dilation [[0, A], [A^T, 0]].
HhlResult hhl_solve_general(const linalg::Matrix<double>& A, const linalg::Vector<double>& b,
                            const HhlOptions& options = {});

}  // namespace mpqls::hhl
