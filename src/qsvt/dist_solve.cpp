#include "qsvt/dist_solve.hpp"

#include <cmath>
#include <type_traits>

#include "common/contracts.hpp"
#include "linalg/blas.hpp"
#include "qsim/exec/dist/dist_state.hpp"

namespace mpqls::qsvt::dist {

namespace edist = qsim::exec::dist;

DistSolveSession::DistSolveSession(DistConfig config) : config_(std::move(config)) {
  expects(config_.world_log2 >= 1, "dist solve: need at least 2 shards");
  expects(config_.rank < (1u << config_.world_log2), "dist solve: rank out of range");
  expects(config_.channel != nullptr, "dist solve: no peer channel");
}

DistSolveSession::~DistSolveSession() = default;

void DistSolveSession::bind(const QsvtSolverContext& ctx) {
  if (bound_ != nullptr) {
    expects(bound_ == &ctx, "dist solve: session bound to a different context");
    return;
  }
  expects(ctx.options.backend == Backend::kGateLevel, "dist solve: gate-level contexts only");
  expects(ctx.programs != nullptr, "dist solve: context has no compiled program");
  expects(ctx.options.noise.depolarizing_per_gate == 0.0 &&
              ctx.options.noise.damping_per_gate == 0.0,
          "dist solve: noise trajectories are single-node only");
  plan_ = edist::build_exchange_plan(ctx.programs->ir(), config_.world_log2);
  bound_ = &ctx;
}

template <typename T>
const edist::RankProgram<T>& DistSolveSession::rank_program() {
  auto& slot = [this]() -> std::optional<edist::RankProgram<T>>& {
    if constexpr (std::is_same_v<T, qsim::exec::f16>) {
      return prog_half_;
    } else if constexpr (std::is_same_v<T, float>) {
      return prog_single_;
    } else {
      return prog_double_;
    }
  }();
  if (!slot) slot = edist::specialize_rank<T>(*plan_, config_.rank);
  return *slot;
}

template <typename T>
QsvtSolveOutcome DistSolveSession::solve_one(const QsvtSolverContext& ctx,
                                             const linalg::Vector<double>& rhs) {
  const QsvtCircuit& qc = *ctx.circuit;
  const std::uint32_t width = qc.circuit.num_qubits();
  const std::size_t N = ctx.A.rows();
  expects(rhs.size() == N, "dist solve: dimension mismatch");

  // Normalize classically — identical on every rank.
  linalg::Vector<double> rhs_unit = rhs;
  {
    const double n = linalg::nrm2(rhs_unit);
    expects(n > 0.0, "dist solve: zero right-hand side");
    for (auto& x : rhs_unit) x /= n;
  }

  edist::DistState<T> state(width, config_.world_log2, config_.rank);
  state.load_global_real(rhs_unit);

  edist::DistRunMetrics metrics;
  edist::run_rank_program<T>(rank_program<T>(), state, *config_.channel, seq_, &metrics);

  // Postselect: BE ancillas and signal at |0>, real-part qubit at |1>.
  // The probability partial is allreduced so every rank scales by the
  // same global p (the surviving subspace typically lives on one rank;
  // the rest contribute exact zeros).
  const auto zeros = qc.zero_postselect();
  const std::vector<std::uint32_t> ones = {qc.realpart_qubit};
  double p = state.probability_match_partial(zeros, ones);
  edist::allreduce_sum(*config_.channel, config_.rank, config_.world_log2, seq_, &p, 1);
  expects(p > 0.0, "dist solve: zero-probability postselection");
  state.postselect_scale(zeros, ones, p);

  // Direction + imaginary-mass partials in one (N+1)-word allreduce: the
  // owner of each surviving amplitude contributes its value, everyone
  // else exact zero.
  const std::uint64_t rp_bit = std::uint64_t{1} << qc.realpart_qubit;
  std::vector<double> reduce(N + 1, 0.0);
  for (std::size_t i = 0; i < N; ++i) {
    const std::uint64_t g = static_cast<std::uint64_t>(i) | rp_bit;
    if (!state.owns(g)) continue;
    const auto a = state.amp_global(g);
    reduce[i] = a.real();
    reduce[N] += a.imag() * a.imag();
  }
  edist::allreduce_sum(*config_.channel, config_.rank, config_.world_log2, seq_, reduce.data(),
                       reduce.size());

  QsvtSolveOutcome out;
  out.direction.resize(N);
  for (std::size_t i = 0; i < N; ++i) out.direction[i] = reduce[i];
  constexpr double imag_tol = std::is_same_v<T, qsim::exec::f16> ? 1e-2 : 1e-6;
  ensures(reduce[N] < imag_tol, "dist solve: unexpected imaginary amplitudes");
  const double n = linalg::nrm2(out.direction);
  expects(n > 0.0, "dist solve: zero-probability postselection");
  for (auto& x : out.direction) x /= n;
  out.success_probability = p;
  out.be_calls = qc.be_calls;
  out.circuit_gates = qc.circuit.size() + ctx.sp_circuit_gates;

  ++stats_.solves;
  stats_.exchange_rounds += metrics.exchange_rounds;
  stats_.bytes_moved += metrics.bytes_moved;
  stats_.exchange_seconds += metrics.exchange_seconds;
  stats_.local_seconds += metrics.local_seconds;
  stats_.plan_naive_rounds += plan_->stats.naive_rounds;
  stats_.plan_scheduled_rounds += plan_->stats.scheduled_rounds;
  return out;
}

std::vector<QsvtSolveOutcome> DistSolveSession::solve_directions(
    const QsvtSolverContext& ctx, const std::vector<const linalg::Vector<double>*>& rhs,
    QpuPrecision tier) {
  expects(!rhs.empty(), "dist solve: at least one right-hand side");
  expects(tier != QpuPrecision::kAdaptive, "dist solve: tier must be a concrete precision");
  bind(ctx);
  std::vector<QsvtSolveOutcome> out;
  out.reserve(rhs.size());
  for (const auto* b : rhs) {
    switch (tier) {
      case QpuPrecision::kHalf:
        out.push_back(solve_one<qsim::exec::f16>(ctx, *b));
        break;
      case QpuPrecision::kSingle:
        out.push_back(solve_one<float>(ctx, *b));
        break;
      default:
        out.push_back(solve_one<double>(ctx, *b));
        break;
    }
  }
  return out;
}

}  // namespace mpqls::qsvt::dist
