// De-normalization (Remark 2 of the paper): quantum measurement yields only
// the direction eta = x/||x||; the magnitude is recovered classically by
// minimizing mu -> ||A (x_base + mu eta) - b|| with Brent's method. The
// closed-form least-squares solution exists too and is used to cross-check.
#pragma once

#include "linalg/matrix.hpp"

namespace mpqls::qsvt {

struct StepFit {
  double mu = 0.0;
  double residual_norm = 0.0;  ///< ||A(x_base + mu eta) - b|| at the optimum
  int brent_iterations = 0;
};

/// Brent's-method fit (the paper's choice). `x_base` may be empty (treated
/// as zero, i.e. the first solve).
StepFit fit_step_brent(const linalg::Matrix<double>& A, const linalg::Vector<double>& x_base,
                       const linalg::Vector<double>& eta, const linalg::Vector<double>& b);

/// Closed-form least-squares mu = <A eta, r> / ||A eta||^2.
StepFit fit_step_closed_form(const linalg::Matrix<double>& A,
                             const linalg::Vector<double>& x_base,
                             const linalg::Vector<double>& eta,
                             const linalg::Vector<double>& b);

}  // namespace mpqls::qsvt
