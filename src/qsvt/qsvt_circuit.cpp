#include "qsvt/qsvt_circuit.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace mpqls::qsvt {

QsvtPhases qsvt_phases_from_qsp(const std::vector<double>& qsp_phases) {
  expects(qsp_phases.size() >= 2, "need at least d+1 = 2 QSP phases");
  const std::size_t d = qsp_phases.size() - 1;
  QsvtPhases out;
  out.phi.resize(d);
  // Derived by matching the scalar block against the Wx response (see the
  // d = 1, 2 worked examples in the tests): the leftmost reflection phase
  // absorbs both QSP end phases plus (d-1) pi/2, interior phases shift by
  // -pi/2.
  out.phi[0] = qsp_phases.front() + qsp_phases.back() +
               static_cast<double>(d - 1) * M_PI / 2.0;
  for (std::size_t j = 1; j < d; ++j) {
    out.phi[j] = qsp_phases[j] - M_PI / 2.0;
  }
  out.global_phase = 0.0;
  return out;
}

namespace {

// e^{i phi (2 Pi - I)} with Pi = |0..0><0..0| on the BE ancillas, with an
// optional sign flip controlled on the real-part qubit.
void append_phase_gadget(qsim::Circuit& c, const std::vector<std::uint32_t>& anc,
                         std::uint32_t signal, double phi, std::uint32_t realpart,
                         bool with_realpart_flip) {
  auto cpix = [&] {
    qsim::Gate g;
    g.kind = qsim::GateKind::kX;
    g.targets = {signal};
    g.neg_controls = anc;
    c.push(g);
  };
  if (anc.empty()) {
    // Degenerate projector (no ancillas): 2 Pi - I = I.
    c.global_phase(phi);
    return;
  }
  cpix();
  c.rz(signal, 2.0 * phi);
  if (with_realpart_flip) c.crz(realpart, signal, -4.0 * phi);
  cpix();
}

}  // namespace

QsvtCircuit build_qsvt_circuit(const blockenc::BlockEncoding& be,
                               const std::vector<double>& qsp_phases) {
  const auto conv = qsvt_phases_from_qsp(qsp_phases);
  const std::size_t d = conv.phi.size();

  QsvtCircuit out;
  out.n_data = be.n_data;
  out.n_be_anc = be.n_anc;
  out.signal_qubit = be.n_data + be.n_anc;
  out.realpart_qubit = out.signal_qubit + 1;
  out.be_calls = d;

  const std::uint32_t width = out.realpart_qubit + 1;
  qsim::Circuit c(width);
  const auto anc = be.ancilla_qubits();

  // Real-part LCU opens with H on r.
  c.h(out.realpart_qubit);

  // Apply the Eq. (2)/(3) sequence. Reading the equations right-to-left
  // (application order): U first, then gadgets/adjoints alternating; the
  // k-th applied block operator is U for odd k, U^dagger for even k; the
  // gadget after the k-th operator carries phi[d - k].
  const qsim::Circuit be_dag = be.circuit.dagger();
  for (std::size_t k = 1; k <= d; ++k) {
    c.append((k % 2 == 1) ? be.circuit : be_dag);
    append_phase_gadget(c, anc, out.signal_qubit, conv.phi[d - k], out.realpart_qubit,
                        /*with_realpart_flip=*/true);
  }

  // Close the LCU: H on r, postselect r = 1 handled by the caller; the
  // -pi/2 global phase turns the i*P block into P.
  c.h(out.realpart_qubit);
  c.global_phase(conv.global_phase - M_PI / 2.0);

  out.circuit = std::move(c);
  return out;
}

}  // namespace mpqls::qsvt
