// QSVT linear-solver engine: prepares the inversion polynomial, the QSP
// phases and the block-encoding once (they are reused across all
// refinement iterations — the paper's Section III-A point about circuit
// synthesis being a one-off cost), then answers normalized solves
// A x ~ rhs, returning the solution *direction* (a unit vector, exactly
// what sampling a quantum state yields; Remark 2).
//
// Two interchangeable backends:
//  * kGateLevel — builds SP(rhs) + U_Phi as circuits and runs them on the
//    statevector simulator (float or double), postselecting ancillas.
//  * kMatrixFunction — applies the same polynomial directly to the
//    singular values (the ideal QSVT channel). Used for large kappa where
//    the paper switches to estimated angles [32]; see DESIGN.md
//    substitution #2.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "blockenc/block_encoding.hpp"
#include "common/rng.hpp"
#include "linalg/jacobi_svd.hpp"
#include "linalg/matrix.hpp"
#include "poly/inverse_poly.hpp"
#include "qsim/exec/backend/backend.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/program.hpp"
#include "qsim/noise.hpp"
#include "qsp/symmetric_qsp.hpp"
#include "qsvt/qsvt_circuit.hpp"

namespace mpqls::qsvt {

enum class Backend { kGateLevel, kMatrixFunction };
/// QPU statevector precision. The first two are fixed tiers (wire-encoded
/// values — append only). kHalf stores amplitudes in binary16 and computes
/// in float (the panel path; scalar half solves run a one-lane panel).
/// kAdaptive is not a tier: the refinement loop starts cheap and escalates
/// half -> single -> double per lane as the residual contracts.
enum class QpuPrecision { kSingle, kDouble, kHalf, kAdaptive };
enum class PolyMethod { kInterpolated, kAnalytic };
enum class EncodingKind {
  kDenseEmbedding,  ///< 1-ancilla SVD completion (oracle-level; default)
  kLcuPauli,        ///< gate-level LCU over the tree Pauli decomposition
  kTridiagonal,     ///< gate-level banded encoding (A must be tridiag(-1,2,-1))
};

struct QsvtOptions {
  Backend backend = Backend::kGateLevel;
  QpuPrecision precision = QpuPrecision::kDouble;
  PolyMethod poly_method = PolyMethod::kInterpolated;
  EncodingKind encoding = EncodingKind::kDenseEmbedding;
  double eps_l = 1e-2;    ///< requested QSVT solve accuracy (relative)
  double kappa = 0.0;     ///< condition estimate; 0 = compute from the SVD
  double kappa_margin = 1.05;  ///< headroom multiplier on the estimate
  /// Shot-based readout: 0 = exact amplitudes (what the paper's myQLM
  /// experiments use — see DESIGN.md substitution #5), otherwise the
  /// number of measurement samples for the multinomial model.
  std::uint64_t shots = 0;
  std::uint64_t seed = 1234;  ///< for the shot and noise models
  /// Gate-level noise (trajectory-sampled); only honoured by kGateLevel.
  /// The paper targets fault-tolerant hardware — the noise ablation bench
  /// shows why NISQ rates break the refinement contraction.
  qsim::NoiseModel noise = {};
  qsp::SymQspOptions qsp_options = {};
  /// Execution backend replaying the compiled program (a name in
  /// qsim::exec::backend_registry(); "reference", "blocked", ...). Empty
  /// selects the process default ("reference"); the service layer resolves
  /// empty to its configured default before preparing a context. Distinct
  /// from `backend` above, which picks gate-level vs matrix-function
  /// *simulation*; this picks the kernel implementation under gate-level.
  std::string exec_backend;
};

/// Everything computed once per matrix. After preparation the context is
/// immutable: `qsvt_solve_direction` only reads it, so a single (shared)
/// context can serve many right-hand sides from many threads concurrently —
/// the amortization the service layer's context cache builds on.
struct QsvtSolverContext {
  QsvtOptions options;
  linalg::Matrix<double> A;
  linalg::Svd svd;                  ///< SVD of A (backend + kappa estimate)
  double kappa_effective = 0.0;     ///< kappa used for the polynomial
  blockenc::BlockEncoding be;       ///< block-encoding of A^T
  poly::InversePoly inverse;        ///< unwindowed inverse approximation
  poly::ChebSeries target;          ///< windowed + scaled QSP target
  double poly_scale = 1.0;          ///< target = scale * (windowed inverse)
  double eps_l_effective = 0.0;     ///< measured polynomial accuracy
  qsp::SymQspResult phases;         ///< symmetric QSP phases (gate backend)
  std::optional<QsvtCircuit> circuit;  ///< built for the gate backend
  /// The QSVT circuit lowered once (lower + fuse) to a precision-agnostic
  /// FusedIr; every precision tier's Program<T> is specialized lazily from
  /// it on first use and cached — one IR, no recompilation when the
  /// adaptive loop hops tiers. ProgramSet is internally synchronized, so a
  /// shared-const context still hands out programs from many threads.
  /// Clean solves never re-interpret the gate list; only noise
  /// trajectories do.
  std::shared_ptr<qsim::exec::ProgramSet> programs;
  /// The execution backend resolved from options.exec_backend (never null
  /// for gate-level contexts) and its per-context handle. The handle owns
  /// backend state scoped to this context — e.g. the blocked backend's
  /// per-program tile plans — and is internally synchronized, preserving
  /// the shared-const concurrency contract.
  const qsim::exec::ExecBackend* exec_backend = nullptr;
  std::shared_ptr<qsim::exec::BackendHandle> backend_handle;
  /// Gate count of SP(rhs) for this register size. The KP-tree circuit's
  /// structure depends only on the vector length, so it is counted once
  /// here; the clean gate-level path embeds rhs_unit directly into the
  /// register (the circuit applied to |0…0> is exactly that embedding)
  /// and reports these gates without rebuilding the circuit per solve.
  std::uint64_t sp_circuit_gates = 0;
  std::uint64_t prepare_classical_flops = 0;
};

/// Stats of the context's compiled program (nullptr for the matrix-function
/// backend or contexts prepared without a circuit) — telemetry surfaced in
/// QsvtIrReport and the service job results.
const qsim::exec::ProgramStats* compiled_program_stats(const QsvtSolverContext& ctx);

/// One-off preparation: SVD, block-encoding, polynomial, phases, circuit.
QsvtSolverContext prepare_qsvt_solver(linalg::Matrix<double> A, QsvtOptions options);

/// Shared-ownership variant for caches and concurrent consumers: the
/// returned context is const, so every thread holding the pointer may call
/// `qsvt_solve_direction` on it without synchronization.
std::shared_ptr<const QsvtSolverContext> prepare_qsvt_solver_shared(linalg::Matrix<double> A,
                                                                    QsvtOptions options);

struct QsvtSolveOutcome {
  linalg::Vector<double> direction;  ///< unit vector ~ x / ||x||
  double success_probability = 0.0;  ///< ancilla postselection probability
  std::uint64_t be_calls = 0;        ///< block-encoding applications used
  std::uint64_t circuit_gates = 0;   ///< gate count of the executed circuit
};

/// Solve A x ~ rhs (rhs need not be normalized) for the direction of x.
QsvtSolveOutcome qsvt_solve_direction(const QsvtSolverContext& ctx,
                                      const linalg::Vector<double>& rhs);

/// Tier-override variant for the adaptive refinement loop: run this solve
/// at the given concrete precision tier (kHalf/kSingle/kDouble — never
/// kAdaptive) regardless of the context's configured precision. A context
/// configured kAdaptive defaults to kDouble when no tier is given.
QsvtSolveOutcome qsvt_solve_direction(const QsvtSolverContext& ctx,
                                      const linalg::Vector<double>& rhs, QpuPrecision tier);

/// Panel-execution accounting for the batch API: how many compiled-program
/// panel sweeps ran and how many RHS lanes they carried. Lanes per panel /
/// the configured panel width is the service's lane-occupancy telemetry.
struct PanelExecStats {
  std::uint64_t panels = 0;  ///< panel sweeps of the compiled program
  std::uint64_t lanes = 0;   ///< right-hand sides carried by those sweeps
};

/// Batched variant of `qsvt_solve_direction`: solve every right-hand side
/// against the same context in ONE sweep of the cached compiled program.
/// Each RHS is normalized and embedded directly into its own lane of a
/// StatePanel (no per-solve state-prep circuit), the program is replayed
/// once over the panel, and every lane is post-selected and extracted.
/// Outcomes match the scalar path per RHS up to vectorization-dependent
/// rounding. Falls back to sequential scalar solves — and leaves `stats`
/// untouched — for the matrix-function backend, noisy contexts, and
/// single-RHS batches, so callers may use it unconditionally.
std::vector<QsvtSolveOutcome> qsvt_solve_directions(
    const QsvtSolverContext& ctx, std::span<const linalg::Vector<double>> rhs,
    PanelExecStats* stats = nullptr,
    std::optional<QpuPrecision> tier = std::nullopt);

/// Pointer-batch overload for callers whose right-hand sides are not
/// contiguous (the lockstep refinement loop batches per-lane residual
/// vectors that live in separate lane states). `tier` overrides the
/// context's precision for this batch (see qsvt_solve_direction above) —
/// the adaptive loop issues one call per tier group per round.
std::vector<QsvtSolveOutcome> qsvt_solve_directions(
    const QsvtSolverContext& ctx, const std::vector<const linalg::Vector<double>*>& rhs,
    PanelExecStats* stats = nullptr,
    std::optional<QpuPrecision> tier = std::nullopt);

}  // namespace mpqls::qsvt
