#include "qsvt/denormalize.hpp"

#include <cmath>

#include "common/brent.hpp"
#include "common/contracts.hpp"
#include "linalg/blas.hpp"

namespace mpqls::qsvt {

namespace {

linalg::Vector<double> residual_at(const linalg::Matrix<double>& A,
                                   const linalg::Vector<double>& x_base,
                                   const linalg::Vector<double>& b) {
  if (x_base.empty()) return b;
  return linalg::residual(A, x_base, b);
}

}  // namespace

StepFit fit_step_brent(const linalg::Matrix<double>& A, const linalg::Vector<double>& x_base,
                       const linalg::Vector<double>& eta, const linalg::Vector<double>& b) {
  const auto r = residual_at(A, x_base, b);
  const auto a_eta = linalg::matvec(A, eta);
  const double denom = linalg::nrm2(a_eta);
  expects(denom > 0.0, "fit_step: A*eta vanishes");
  // |mu*| <= ||r|| / ||A eta|| by Cauchy-Schwarz: bracket with headroom.
  const double bound = 2.0 * linalg::nrm2(r) / denom + 1e-30;
  auto objective = [&](double mu) {
    double s = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      const double d = mu * a_eta[i] - r[i];
      s += d * d;
    }
    return s;
  };
  const auto res = brent_minimize(objective, -bound, bound, 1e-14);
  StepFit fit;
  fit.mu = res.x;
  fit.residual_norm = std::sqrt(std::fmax(0.0, res.fx));
  fit.brent_iterations = res.iterations;
  return fit;
}

StepFit fit_step_closed_form(const linalg::Matrix<double>& A,
                             const linalg::Vector<double>& x_base,
                             const linalg::Vector<double>& eta,
                             const linalg::Vector<double>& b) {
  const auto r = residual_at(A, x_base, b);
  const auto a_eta = linalg::matvec(A, eta);
  const double denom = linalg::dot(a_eta, a_eta);
  expects(denom > 0.0, "fit_step: A*eta vanishes");
  StepFit fit;
  fit.mu = linalg::dot(a_eta, r) / denom;
  double s = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double d = fit.mu * a_eta[i] - r[i];
    s += d * d;
  }
  fit.residual_norm = std::sqrt(s);
  return fit;
}

}  // namespace mpqls::qsvt
