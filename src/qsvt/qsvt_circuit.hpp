// Quantum circuit for the QSVT (Section II-A3 of the paper, Eqs. (2)-(3)):
// an alternating phase modulation sequence of the block-encoding U, its
// adjoint, and projector-controlled phase operators e^{i phi (2 Pi - I)}.
//
// Construction notes:
//  * The projector phase gadget uses one signal qubit s: CPiX(anc -> s),
//    RZ(2 phi) on s, CPiX(anc -> s), where CPiX fires when all BE
//    ancillas are |0> (negative controls — no X sandwiches).
//  * The phases come from the symmetric-QSP solver in the Wx convention;
//    `qsvt_phases_from_qsp` converts them to the reflection convention
//    (the interior phases shift by -pi/2 and the two ends merge, plus a
//    global phase) so that the encoded block is exactly the QSP response.
//  * Because the response carries the target polynomial in its IMAGINARY
//    part (Im<0|U_Phi|0> = P), the circuit wraps the sequence in a
//    one-ancilla LCU of U_Phi and U_{-Phi}: an extra qubit r in |+>,
//    sign-flipped gadget angles when r = 1, H, postselect r = 1. For a
//    real block-encoding this implements the block i*P(A), and the global
//    -pi/2 phase gate turns that into exactly P(A).
#pragma once

#include <cstdint>
#include <vector>

#include "blockenc/block_encoding.hpp"
#include "qsim/circuit.hpp"

namespace mpqls::qsvt {

struct QsvtCircuit {
  qsim::Circuit circuit;    ///< data + BE ancillas + signal + real-part qubit
  std::uint32_t n_data = 0;
  std::uint32_t n_be_anc = 0;
  std::uint32_t signal_qubit = 0;
  std::uint32_t realpart_qubit = 0;
  std::uint64_t be_calls = 0;  ///< number of U / U^dagger applications (= degree)

  /// Qubits that must be postselected to |0> (BE ancillas + signal).
  std::vector<std::uint32_t> zero_postselect() const {
    std::vector<std::uint32_t> q;
    for (std::uint32_t i = n_data; i < n_data + n_be_anc; ++i) q.push_back(i);
    q.push_back(signal_qubit);
    return q;
  }
};

/// Convert Wx-convention QSP phases (length d+1) to reflection-convention
/// QSVT phases (length d) plus the global phase to apply.
struct QsvtPhases {
  std::vector<double> phi;  ///< length d, ordered as in Eqs. (2)-(3)
  double global_phase = 0.0;
};
QsvtPhases qsvt_phases_from_qsp(const std::vector<double>& qsp_phases);

/// Build the full QSVT circuit implementing the polynomial encoded by the
/// (symmetric) QSP phases on the block-encoded operator.
QsvtCircuit build_qsvt_circuit(const blockenc::BlockEncoding& be,
                               const std::vector<double>& qsp_phases);

}  // namespace mpqls::qsvt
