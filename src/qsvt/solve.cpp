#include "qsvt/solve.hpp"

#include <bit>
#include <cmath>

#include "common/sampling.hpp"

#include "blockenc/dense_embedding.hpp"
#include "blockenc/lcu.hpp"
#include "blockenc/tridiagonal.hpp"
#include "common/contracts.hpp"
#include "linalg/random_matrix.hpp"
#include "linalg/blas.hpp"
#include "linalg/flops.hpp"
#include "qsim/exec/compile.hpp"
#include "qsim/exec/executor.hpp"
#include "qsim/exec/panel.hpp"
#include "qsim/exec/panel_executor.hpp"
#include "qsim/statevector.hpp"
#include "stateprep/kp_tree.hpp"

namespace mpqls::qsvt {

QsvtSolverContext prepare_qsvt_solver(linalg::Matrix<double> A, QsvtOptions options) {
  expects(A.rows() == A.cols(), "qsvt solver: square matrix required");
  QsvtSolverContext ctx;
  ctx.options = options;

  linalg::FlopScope flops;
  ctx.A = std::move(A);
  ctx.svd = linalg::jacobi_svd(ctx.A);
  expects(ctx.svd.sigma.back() > 0.0, "qsvt solver: singular matrix");

  // Block-encode A^T. The encoded singular values are sigma_i / alpha, so
  // the inversion polynomial's domain is [1/kappa_be, 1] with
  // kappa_be = alpha / sigma_min — which exceeds kappa(A) whenever the
  // encoding's subnormalization alpha is above ||A||_2 (LCU, tridiagonal).
  switch (options.encoding) {
    case EncodingKind::kDenseEmbedding:
      ctx.be = blockenc::dense_embedding(linalg::transpose(ctx.A));
      break;
    case EncodingKind::kLcuPauli:
      ctx.be = blockenc::lcu_block_encoding(linalg::transpose(ctx.A));
      break;
    case EncodingKind::kTridiagonal: {
      const auto expected = linalg::dirichlet_laplacian(ctx.A.rows());
      expects(linalg::max_abs_diff(ctx.A, expected) < 1e-12,
              "tridiagonal encoding requires A = tridiag(-1,2,-1)");
      // tridiag(-1,2,-1) is symmetric: encoding A encodes A^T.
      ctx.be = blockenc::tridiagonal_block_encoding(
          static_cast<std::uint32_t>(std::countr_zero(ctx.A.rows())));
      break;
    }
  }

  const double kappa_be_measured = ctx.be.alpha / ctx.svd.sigma.back();
  const double kappa_req = (options.kappa > 0.0)
                               ? options.kappa * ctx.be.alpha / ctx.svd.sigma.front()
                               : kappa_be_measured;
  ctx.kappa_effective = kappa_req * options.kappa_margin;

  // Inverse polynomial at the requested low accuracy eps_l.
  ctx.inverse = (options.poly_method == PolyMethod::kAnalytic)
                    ? poly::inverse_poly_analytic(ctx.kappa_effective, options.eps_l)
                    : poly::inverse_poly_interpolated(ctx.kappa_effective, options.eps_l);

  // Enforce |P| <= 0.9 on [-1,1] by rescaling. The paper multiplies by a
  // rectangle polynomial instead (Section II-A4); for a direction-based
  // readout the two are equivalent — a known scalar factor s drops out of
  // x/||x|| and only costs success probability (s^2) — while rescaling
  // adds no degree and no transition-resolution error. The rectangle
  // window lives in poly/rect_window and is exercised by its own tests and
  // the polynomial ablation bench. The bump of the smoothed inverse below
  // 1/kappa tops out near sqrt(log(kappa/eps))/2, so s stays O(1).
  ctx.target = ctx.inverse.series;
  const double max_abs = ctx.inverse.max_abs;
  ctx.poly_scale = (max_abs > 0.9) ? 0.9 / max_abs : 1.0;
  ctx.target = ctx.target.scaled(ctx.poly_scale).parity_projected(poly::Parity::kOdd);

  // Measured polynomial accuracy (before scaling) in the units of
  // Theorem III.1's eps_l: max 2k|P - 1/(2kx)| over the domain.
  {
    double worst = 0.0;
    const double kappa = ctx.kappa_effective;
    for (int i = 0; i < 4001; ++i) {
      const double t = static_cast<double>(i) / 4000.0;
      const double x = std::pow(kappa, -(1.0 - t));
      const double err =
          std::fabs(ctx.target.evaluate(x) / ctx.poly_scale - 1.0 / (2.0 * kappa * x));
      worst = std::fmax(worst, 2.0 * kappa * err);
    }
    ctx.eps_l_effective = worst;
  }

  if (options.backend == Backend::kGateLevel) {
    // Resolve the execution backend up front so an unknown name fails at
    // prepare time (where the service can 400 it), not mid-solve.
    const std::string backend_name =
        options.exec_backend.empty() ? qsim::exec::kDefaultBackendName : options.exec_backend;
    ctx.exec_backend = qsim::exec::find_backend(backend_name);
    expects(ctx.exec_backend != nullptr, "qsvt solver: unknown execution backend");
    ctx.backend_handle = ctx.exec_backend->create_handle();

    ctx.phases = qsp::solve_symmetric_qsp(ctx.target, options.qsp_options);
    expects(ctx.phases.converged, "qsvt solver: QSP phase finding failed");
    ctx.circuit = build_qsvt_circuit(ctx.be, ctx.phases.phases);
    // Lower + fuse the circuit once into a precision-agnostic IR. Like the
    // circuit itself this is a one-off synthesis cost amortized across
    // every right-hand side served from this context; the per-tier
    // Program<T> specializations hang off the shared IR and materialize
    // lazily, so the adaptive loop hops precisions without recompiling.
    {
      Timer timer;
      auto ir = qsim::exec::lower_and_fuse(ctx.circuit->circuit);
      ir.stats.compile_seconds = timer.seconds();
      ctx.programs = std::make_shared<qsim::exec::ProgramSet>(std::move(ir));
    }
    // Fixed-precision contexts specialize their one tier eagerly so the
    // cost lands in prepare (where the old per-precision compile lived);
    // adaptive contexts leave every tier lazy.
    switch (options.precision) {
      case QpuPrecision::kSingle: ctx.programs->get<float>(); break;
      case QpuPrecision::kDouble: ctx.programs->get<double>(); break;
      case QpuPrecision::kHalf: ctx.programs->get<qsim::exec::f16>(); break;
      case QpuPrecision::kAdaptive: break;
    }
    // The KP-tree preparation emits the same gate structure for every
    // vector of this length (only the angles differ), so its gate count is
    // a per-matrix constant: count it once on a basis vector and let the
    // clean path report it without rebuilding SP(rhs) per solve.
    linalg::Vector<double> e0(ctx.A.rows(), 0.0);
    e0[0] = 1.0;
    ctx.sp_circuit_gates = stateprep::kp_state_preparation(e0).circuit.size();
  }
  ctx.prepare_classical_flops = flops.count();
  return ctx;
}

std::shared_ptr<const QsvtSolverContext> prepare_qsvt_solver_shared(linalg::Matrix<double> A,
                                                                    QsvtOptions options) {
  return std::make_shared<const QsvtSolverContext>(
      prepare_qsvt_solver(std::move(A), std::move(options)));
}

namespace {

/// The context's compiled program in precision T (nullptr if the context
/// has no program set; specializes lazily from the shared IR otherwise).
template <typename T>
const qsim::exec::Program<T>* context_program(const QsvtSolverContext& ctx) {
  return ctx.programs ? &ctx.programs->get<T>() : nullptr;
}

/// Map an optional override to the concrete tier a solve call runs at: the
/// override wins, else the context's configured precision; kAdaptive is a
/// schedule, not a tier, and defaults to its most accurate member.
QpuPrecision resolve_tier(const QsvtSolverContext& ctx, std::optional<QpuPrecision> tier) {
  QpuPrecision t = tier.value_or(ctx.options.precision);
  if (t == QpuPrecision::kAdaptive) t = QpuPrecision::kDouble;
  return t;
}

linalg::Vector<double> normalized(const linalg::Vector<double>& v) {
  const double n = linalg::nrm2(v);
  expects(n > 0.0, "qsvt solve: zero right-hand side");
  linalg::Vector<double> out = v;
  for (auto& x : out) x /= n;
  return out;
}

// Shot-noise model: estimate |amp_i| from a multinomial sample and attach
// the exact sign (sign recovery is a separate Hadamard-test protocol whose
// cost is part of the O(1/eps^2) sampling budget; see DESIGN.md).
void apply_shot_noise(linalg::Vector<double>& direction, std::uint64_t shots,
                      std::uint64_t seed) {
  if (shots == 0) return;
  Xoshiro256 rng(seed);
  // One cumulative-distribution pass held in a reusable handle, O(log n)
  // binary search per shot (the per-shot linear scan used to dominate
  // large multi-shot readouts).
  std::vector<double> cdf(direction.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < direction.size(); ++i) {
    acc += direction[i] * direction[i];
    cdf[i] = acc;
  }
  const CdfSampler sampler(std::move(cdf));
  std::vector<std::uint64_t> hist(direction.size(), 0);
  for (const std::size_t outcome : sampler.draw(rng, shots)) ++hist[outcome];
  for (std::size_t i = 0; i < direction.size(); ++i) {
    const double mag = std::sqrt(static_cast<double>(hist[i]) / static_cast<double>(shots));
    direction[i] = std::copysign(mag, direction[i]);
  }
  const double n = linalg::nrm2(direction);
  if (n > 0.0) {
    for (auto& x : direction) x /= n;
  }
}

template <typename T>
QsvtSolveOutcome run_gate_level(const QsvtSolverContext& ctx,
                                const linalg::Vector<double>& rhs_unit) {
  const QsvtCircuit& qc = *ctx.circuit;
  const std::uint32_t width = qc.circuit.num_qubits();
  const std::size_t N = rhs_unit.size();

  qsim::Statevector<T> sv(width);
  const bool noisy = ctx.options.noise.depolarizing_per_gate > 0.0 ||
                     ctx.options.noise.damping_per_gate > 0.0;
  std::uint64_t sp_gates = ctx.sp_circuit_gates;
  if (noisy) {
    // The noisy path needs the real SP(rhs) circuit: trajectories inject
    // errors between its gates, which a direct embedding has none of.
    const auto sp = stateprep::kp_state_preparation(rhs_unit);
    sp_gates = sp.circuit.size();
    // Mix the right-hand side into the seed so each refinement iteration
    // draws an independent trajectory.
    std::uint64_t h = ctx.options.seed;
    for (double v : rhs_unit) {
      std::uint64_t bits;
      __builtin_memcpy(&bits, &v, 8);
      h = (h ^ bits) * 0x100000001B3ull;
    }
    Xoshiro256 noise_rng(h);
    apply_noisy(sv, sp.circuit, ctx.options.noise, noise_rng);
    apply_noisy(sv, qc.circuit, ctx.options.noise, noise_rng);
  } else {
    // Clean path: the KP-tree circuit applied to |0…0> is exactly the
    // rhs_unit embedding on the data qubits, so write those amplitudes
    // directly instead of synthesizing and compiling SP(rhs) per solve,
    // then replay the cached compiled program.
    for (std::size_t i = 0; i < N; ++i) {
      sv[i] = typename qsim::Statevector<T>::complex_type(static_cast<T>(rhs_unit[i]), T{});
    }
    if (const auto* program = context_program<T>(ctx)) {
      // Replay through the context's execution backend (reference =
      // exactly the old Executor<T> path, dispatched).
      ctx.exec_backend->apply_program(*ctx.backend_handle, *program, sv);
    } else {
      sv.apply(qc.circuit);
    }
  }

  // Postselect: BE ancillas and signal at |0>, real-part qubit at |1>
  // (flip it so one postselect_zero covers everything).
  qsim::Circuit flip(width);
  flip.x(qc.realpart_qubit);
  sv.apply(flip);
  auto zeros = qc.zero_postselect();
  zeros.push_back(qc.realpart_qubit);
  if (noisy && sv.probability_all_zero(zeros) <= 1e-300) {
    // A noise trajectory destroyed the postselection branch entirely: the
    // hardware analogue is "all shots rejected". Report a no-op solve
    // (direction = rhs, zero success probability); the refinement loop
    // simply makes no progress this iteration.
    QsvtSolveOutcome failed;
    failed.direction = rhs_unit;
    failed.success_probability = 0.0;
    failed.be_calls = qc.be_calls;
    failed.circuit_gates = qc.circuit.size() + sp_gates;
    return failed;
  }
  const double p_success = sv.postselect_zero(zeros);

  QsvtSolveOutcome out;
  out.direction.resize(N);
  double imag_mass = 0.0;
  for (std::size_t i = 0; i < N; ++i) {
    out.direction[i] = static_cast<double>(sv[i].real());
    imag_mass += static_cast<double>(sv[i].imag()) * static_cast<double>(sv[i].imag());
  }
  // For a real block-encoding the postselected state is real; anything
  // else signals a convention bug. (Noise trajectories inject Y/Z paulis,
  // so the check only applies to clean runs; the noisy direction is the
  // real-part projection.)
  ensures(noisy || imag_mass < 1e-6, "qsvt gate backend: unexpected imaginary amplitudes");
  const double n = linalg::nrm2(out.direction);
  expects(n > 0.0, "qsvt gate backend: zero-probability postselection");
  for (auto& x : out.direction) x /= n;

  out.success_probability = p_success;
  out.be_calls = qc.be_calls;
  out.circuit_gates = qc.circuit.size() + sp_gates;
  return out;
}

QsvtSolveOutcome run_matrix_function(const QsvtSolverContext& ctx,
                                     const linalg::Vector<double>& rhs_unit) {
  // Ideal QSVT channel: A^T = V S W^T (from A = W S V^T), so the QSVT of
  // the encoded A^T/alpha applies  W P(S/alpha) V^T ... careful with
  // factors: QSVT_P(A^T) = W P(Sigma) V^T? For odd P and A^T with SVD
  // A^T = V Sigma W^T, QSVT gives V ... — we implement x ~ A^{-1} rhs
  // directly in the SVD basis: x = V Sigma^{-1}-ish W^T rhs with
  // Sigma^{-1}-ish = 2 kappa P(sigma/alpha)-style. Only the direction
  // matters here.
  const auto& svd = ctx.svd;  // A = U Sigma V^T (linalg names: U, sigma, V)
  const std::size_t N = rhs_unit.size();
  const double alpha = ctx.be.alpha;

  // w = U^T rhs; y_i = P(sigma_i / alpha) * w_i; x = V y. Both products
  // go through the blas gemv kernels, which traverse the row-major
  // matrices row by row (the hand-rolled loops this replaces strode down
  // columns, a cache miss per element at service sizes).
  linalg::Vector<double> w = linalg::matvec_transposed(svd.U, rhs_unit);
  double p_mass = 0.0;
  for (std::size_t i = 0; i < N; ++i) {
    const double px = ctx.target.evaluate(svd.sigma[i] / alpha);
    w[i] *= px;
    p_mass += w[i] * w[i];
  }
  QsvtSolveOutcome out;
  out.direction = linalg::matvec(svd.V, w);
  const double n = linalg::nrm2(out.direction);
  expects(n > 0.0, "qsvt matrix backend: zero result");
  for (auto& x : out.direction) x /= n;
  out.success_probability = p_mass;  // || s P(Sigma/alpha) U^T rhs ||^2
  out.be_calls = static_cast<std::uint64_t>(ctx.target.degree());
  out.circuit_gates = 0;
  return out;
}

/// Panel variant of run_gate_level (clean contexts only): every RHS is
/// embedded into its own lane, the cached program is replayed once over
/// the panel, and each lane is post-selected and extracted. Per lane this
/// performs the same arithmetic as the scalar path, so results agree up
/// to vectorization-dependent rounding.
template <typename T>
std::vector<QsvtSolveOutcome> run_gate_level_panel(
    const QsvtSolverContext& ctx, const std::vector<const linalg::Vector<double>*>& rhs) {
  const QsvtCircuit& qc = *ctx.circuit;
  const std::uint32_t width = qc.circuit.num_qubits();
  const std::size_t N = ctx.A.rows();
  const std::size_t B = rhs.size();

  qsim::exec::StatePanel<T> panel(width, B);
  for (std::size_t lane = 0; lane < B; ++lane) {
    expects(rhs[lane]->size() == N, "qsvt panel: dimension mismatch");
    panel.load_lane_real(lane, normalized(*rhs[lane]));
  }
  ctx.exec_backend->apply_program_panel(*ctx.backend_handle, *context_program<T>(ctx), panel);

  // Postselect every lane at once: BE ancillas and signal at |0>, the
  // real-part qubit at |1>. (The scalar path X-flips that qubit so one
  // postselect_zero covers everything; selecting |1> directly is the same
  // projector without the flip sweep.)
  const auto zeros = qc.zero_postselect();
  const auto probs = panel.postselect(zeros, {qc.realpart_qubit});
  const std::size_t rp_bit = std::size_t{1} << qc.realpart_qubit;

  std::vector<QsvtSolveOutcome> out(B);
  for (std::size_t lane = 0; lane < B; ++lane) {
    auto& o = out[lane];
    o.direction.resize(N);
    double imag_mass = 0.0;
    for (std::size_t i = 0; i < N; ++i) {
      const auto a = panel.amp(i | rp_bit, lane);
      o.direction[i] = a.real();
      imag_mass += a.imag() * a.imag();
    }
    // Half-precision storage rounds each amplitude at ~2^-11 relative, so
    // residual imaginary mass sits orders of magnitude above the
    // float/double tiers'; the convention check just needs a looser gate.
    constexpr double imag_tol = std::is_same_v<T, qsim::exec::f16> ? 1e-2 : 1e-6;
    ensures(imag_mass < imag_tol, "qsvt panel backend: unexpected imaginary amplitudes");
    const double n = linalg::nrm2(o.direction);
    expects(n > 0.0, "qsvt panel backend: zero-probability postselection");
    for (auto& x : o.direction) x /= n;
    o.success_probability = probs[lane];
    o.be_calls = qc.be_calls;
    o.circuit_gates = qc.circuit.size() + ctx.sp_circuit_gates;
  }
  return out;
}

}  // namespace

const qsim::exec::ProgramStats* compiled_program_stats(const QsvtSolverContext& ctx) {
  return ctx.programs ? &ctx.programs->ir().stats : nullptr;
}

QsvtSolveOutcome qsvt_solve_direction(const QsvtSolverContext& ctx,
                                      const linalg::Vector<double>& rhs) {
  return qsvt_solve_direction(ctx, rhs, resolve_tier(ctx, std::nullopt));
}

QsvtSolveOutcome qsvt_solve_direction(const QsvtSolverContext& ctx,
                                      const linalg::Vector<double>& rhs, QpuPrecision tier) {
  expects(tier != QpuPrecision::kAdaptive, "qsvt solve: tier must be a concrete precision");
  QsvtSolveOutcome out;
  if (ctx.options.backend == Backend::kGateLevel) {
    const bool noisy = ctx.options.noise.depolarizing_per_gate > 0.0 ||
                       ctx.options.noise.damping_per_gate > 0.0;
    if (tier == QpuPrecision::kHalf && !noisy && ctx.programs) {
      // There is no Statevector<f16>: the half tier always runs the panel
      // machinery, here as a one-lane panel (storage-narrow, float math).
      out = std::move(run_gate_level_panel<qsim::exec::f16>(ctx, {&rhs})[0]);
    } else if (tier == QpuPrecision::kDouble) {
      out = run_gate_level<double>(ctx, normalized(rhs));
    } else {
      // kSingle — and the half tier's fallback when noise trajectories
      // need the gate interpreter (which has no fp16 register either).
      out = run_gate_level<float>(ctx, normalized(rhs));
    }
  } else {
    out = run_matrix_function(ctx, normalized(rhs));
  }
  apply_shot_noise(out.direction, ctx.options.shots, ctx.options.seed);
  return out;
}

std::vector<QsvtSolveOutcome> qsvt_solve_directions(
    const QsvtSolverContext& ctx, const std::vector<const linalg::Vector<double>*>& rhs,
    PanelExecStats* stats, std::optional<QpuPrecision> tier) {
  expects(!rhs.empty(), "qsvt_solve_directions: at least one right-hand side");
  const QpuPrecision t = resolve_tier(ctx, tier);
  const bool noisy = ctx.options.noise.depolarizing_per_gate > 0.0 ||
                     ctx.options.noise.damping_per_gate > 0.0;
  // Half-tier solves have no scalar register, so even a singleton batch
  // takes the (one-lane) panel path.
  const bool panel_path = ctx.options.backend == Backend::kGateLevel && !noisy &&
                          ctx.programs != nullptr &&
                          (rhs.size() >= 2 || t == QpuPrecision::kHalf);
  std::vector<QsvtSolveOutcome> out;
  if (!panel_path) {
    // Matrix-function backend, noise trajectories, and singleton batches
    // keep the scalar path: trajectories need per-gate noise injection,
    // and a one-lane panel is just a worse-laid-out statevector.
    out.reserve(rhs.size());
    for (const auto* b : rhs) out.push_back(qsvt_solve_direction(ctx, *b, t));
    return out;
  }
  switch (t) {
    case QpuPrecision::kHalf:
      out = run_gate_level_panel<qsim::exec::f16>(ctx, rhs);
      break;
    case QpuPrecision::kSingle:
      out = run_gate_level_panel<float>(ctx, rhs);
      break;
    default:
      out = run_gate_level_panel<double>(ctx, rhs);
      break;
  }
  // Shot readout per lane, seeded exactly like the scalar path.
  for (auto& o : out) apply_shot_noise(o.direction, ctx.options.shots, ctx.options.seed);
  if (stats) {
    stats->panels += 1;
    stats->lanes += rhs.size();
  }
  return out;
}

std::vector<QsvtSolveOutcome> qsvt_solve_directions(const QsvtSolverContext& ctx,
                                                    std::span<const linalg::Vector<double>> rhs,
                                                    PanelExecStats* stats,
                                                    std::optional<QpuPrecision> tier) {
  std::vector<const linalg::Vector<double>*> ptrs;
  ptrs.reserve(rhs.size());
  for (const auto& b : rhs) ptrs.push_back(&b);
  return qsvt_solve_directions(ctx, ptrs, stats, tier);
}

}  // namespace mpqls::qsvt
