// Distributed gate-level QSVT solves: one rank's view of a shard-group
// solve. Each of the W = 2^k workers holds a DistState shard of the QSVT
// register (k top qubits partition the amplitudes), replays the rank's
// slice of the context's compiled program (exchange_plan.hpp), and
// reduces postselection probability, direction amplitudes, and imaginary
// mass across the group with a deterministic allreduce. Every rank
// computes the full classical epilogue (normalization, outcome assembly)
// on the identical allreduced values, so every rank returns the identical
// QsvtSolveOutcome — which is what lets the adaptive-precision refinement
// loop above run unchanged and stay in lockstep with zero extra
// synchronization: identical outcomes drive identical tier decisions.
//
// Bitwise parity with single-node replay: the postselected subspace fixes
// the register's top qubits (realpart=1, signal=0, BE ancillas=0), so for
// world sizes that partition only those qubits the surviving amplitudes —
// and the reduction partials — live on exactly one rank; the other ranks
// contribute exact zeros and the double-path outcome equals the one-lane
// panel solve bit for bit (see exchange_plan.hpp for the replay side).
//
// A session serves ONE job: it binds to the job's solver context on first
// use, compiles the exchange plan once, specializes per-tier rank
// programs lazily, and threads a single strictly-increasing exchange
// sequence counter through every replay and allreduce. Calls must arrive
// in the same order on every rank (the refinement loop guarantees this);
// the session itself is not thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qsim/exec/dist/dist_executor.hpp"
#include "qsim/exec/dist/exchange_plan.hpp"
#include "qsim/exec/dist/peer_channel.hpp"
#include "qsvt/solve.hpp"

namespace mpqls::qsvt::dist {

struct DistConfig {
  std::uint32_t rank = 0;
  std::uint32_t world_log2 = 0;
  std::shared_ptr<qsim::exec::dist::PeerChannel> channel;
};

/// Cumulative per-session counters (the mpqls_dist_* series).
struct DistSolveStats {
  std::uint64_t solves = 0;
  std::uint64_t exchange_rounds = 0;
  std::uint64_t bytes_moved = 0;
  double exchange_seconds = 0.0;
  double local_seconds = 0.0;
  std::uint64_t plan_naive_rounds = 0;      ///< per replay, before scheduling
  std::uint64_t plan_scheduled_rounds = 0;  ///< per replay, as executed
};

class DistSolveSession {
 public:
  explicit DistSolveSession(DistConfig config);
  ~DistSolveSession();

  std::uint32_t rank() const { return config_.rank; }
  std::uint32_t world_log2() const { return config_.world_log2; }

  /// Drop-in for qsvt_solve_directions on the gate-level panel path: solve
  /// every right-hand side (one replay each, lockstep across ranks) at the
  /// given concrete tier. Binds to `ctx` on first call; later calls must
  /// pass the same context.
  std::vector<QsvtSolveOutcome> solve_directions(
      const QsvtSolverContext& ctx, const std::vector<const linalg::Vector<double>*>& rhs,
      QpuPrecision tier);

  const DistSolveStats& stats() const { return stats_; }

 private:
  template <typename T>
  QsvtSolveOutcome solve_one(const QsvtSolverContext& ctx, const linalg::Vector<double>& rhs);
  void bind(const QsvtSolverContext& ctx);
  template <typename T>
  const qsim::exec::dist::RankProgram<T>& rank_program();

  DistConfig config_;
  const QsvtSolverContext* bound_ = nullptr;
  std::optional<qsim::exec::dist::ExchangePlan> plan_;
  std::optional<qsim::exec::dist::RankProgram<qsim::exec::f16>> prog_half_;
  std::optional<qsim::exec::dist::RankProgram<float>> prog_single_;
  std::optional<qsim::exec::dist::RankProgram<double>> prog_double_;
  std::uint64_t seq_ = 0;
  DistSolveStats stats_;
};

}  // namespace mpqls::qsvt::dist
