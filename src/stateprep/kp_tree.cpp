#include "stateprep/kp_tree.hpp"

#include <bit>
#include <cmath>

#include "common/contracts.hpp"
#include "qsim/synth/ucr.hpp"

namespace mpqls::stateprep {

StatePreparation kp_state_preparation(const std::vector<double>& v) {
  expects(!v.empty() && std::has_single_bit(v.size()), "kp: length must be a power of two");
  const std::size_t len = v.size();
  const std::uint32_t n = static_cast<std::uint32_t>(std::countr_zero(len));

  StatePreparation out;
  out.circuit = qsim::Circuit(std::max<std::uint32_t>(n, 1));
  if (n == 0) {
    return out;  // single amplitude: nothing to prepare
  }

  // Bottom-up tree of subtree masses: mass[l][j] = sum of v_i^2 over the
  // subtree of node j at level l (level n = leaves).
  std::vector<std::vector<double>> mass(n + 1);
  mass[n].resize(len);
  for (std::size_t i = 0; i < len; ++i) mass[n][i] = v[i] * v[i];
  out.classical_flops += len;
  for (std::uint32_t l = n; l-- > 0;) {
    mass[l].resize(std::size_t{1} << l);
    for (std::size_t j = 0; j < mass[l].size(); ++j) {
      mass[l][j] = mass[l + 1][2 * j] + mass[l + 1][2 * j + 1];
    }
    out.classical_flops += mass[l].size();
  }
  expects(mass[0][0] > 0.0, "kp: cannot prepare the zero vector");

  // Level l rotation targets qubit n-1-l, controlled by the l higher
  // qubits. Angle for node j: split of its mass between children; at the
  // leaf level the child signs extend the angle beyond [0, pi] so that
  // cos/sin carry the amplitude signs.
  for (std::uint32_t l = 0; l < n; ++l) {
    const std::size_t nodes = std::size_t{1} << l;
    std::vector<double> angles(nodes, 0.0);
    for (std::size_t j = 0; j < nodes; ++j) {
      const double left = mass[l + 1][2 * j];
      const double right = mass[l + 1][2 * j + 1];
      if (left + right <= 0.0) continue;  // dead branch: angle irrelevant
      double theta = 2.0 * std::atan2(std::sqrt(right), std::sqrt(left));
      if (l + 1 == n) {
        const bool neg_left = v[2 * j] < 0.0;
        const bool neg_right = v[2 * j + 1] < 0.0;
        if (neg_left && neg_right) {
          theta = 2.0 * M_PI + theta;
        } else if (neg_left) {
          theta = 2.0 * M_PI - theta;
        } else if (neg_right) {
          theta = -theta;
        }
      }
      angles[j] = theta;
    }
    out.classical_flops += 6 * nodes;
    // Node j at level l is the assignment of the l most significant
    // qubits: bit b of j lives on qubit (n - l + b). With that control
    // layout the UCR angle index equals j directly.
    std::vector<std::uint32_t> controls(l);
    for (std::uint32_t b = 0; b < l; ++b) controls[b] = n - l + b;
    qsim::append_ucry(out.circuit, controls, n - 1 - l, angles);
    out.rotation_count += nodes;
  }
  return out;
}

}  // namespace mpqls::stateprep
