// Tree-based state preparation (Kerenidis & Prakash, ITCS 2017 — the
// paper's reference [23]): a binary tree of subtree masses is computed
// classically in O(N) flops, then one uniformly controlled RY per level
// prepares the amplitudes. Signs of a real vector are absorbed into the
// leaf-level rotation angles, so the circuit is pure {RY, CNOT}.
//
// This is the SP(b) / SP(r_i) routine of the paper's Fig. 1: it runs once
// per refinement iteration to load the normalized residual onto the QPU.
#pragma once

#include <cstdint>
#include <vector>

#include "qsim/circuit.hpp"

namespace mpqls::stateprep {

struct StatePreparation {
  qsim::Circuit circuit;           ///< on n = log2(len) qubits; |0..0> -> |v>
  std::uint64_t classical_flops = 0;  ///< tree construction cost (O(N))
  std::uint64_t rotation_count = 0;   ///< RY gates emitted
};

/// Build the preparation circuit for a real vector of power-of-two length.
/// The vector is normalized internally (a zero vector is rejected).
StatePreparation kp_state_preparation(const std::vector<double>& v);

}  // namespace mpqls::stateprep
